"""Unit tests for randomized scan placement."""

import itertools

import pytest

from repro.errors import SimulationError, SpecError
from repro.algorithms.cursor import ExecutionCursor
from repro.algorithms.library import MM_INPLACE, MM_SCAN
from repro.algorithms.randomized import (
    coin_flip_placement,
    random_slot_placement,
    random_split_placement,
)
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.symbolic import SymbolicSimulator

FACTORIES = [random_slot_placement, random_split_placement, coin_flip_placement]


class TestFactories:
    @pytest.mark.parametrize("factory", FACTORIES)
    def test_pieces_shape_and_sum(self, factory):
        randomizer = factory(MM_SCAN, rng=0)
        for size in (4, 16, 64):
            pieces = randomizer(size)
            assert len(pieces) == MM_SCAN.a + 1
            assert sum(pieces) == MM_SCAN.scan_length(size)
            assert all(p >= 0 for p in pieces)

    def test_slot_puts_whole_scan_in_one_slot(self):
        randomizer = random_slot_placement(MM_SCAN, rng=1)
        pieces = randomizer(64)
        assert sorted(pieces)[-1] == 64
        assert sum(1 for p in pieces if p) == 1

    def test_coin_flip_front_or_back(self):
        randomizer = coin_flip_placement(MM_SCAN, rng=2)
        for _ in range(16):
            pieces = randomizer(16)
            assert pieces[0] == 16 or pieces[-1] == 16

    def test_rejects_scanless_spec(self):
        for factory in FACTORIES:
            with pytest.raises(SpecError):
                factory(MM_INPLACE)

    def test_deterministic_by_seed(self):
        a = random_split_placement(MM_SCAN, rng=3)
        b = random_split_placement(MM_SCAN, rng=3)
        assert [a(64) for _ in range(4)] == [b(64) for _ in range(4)]


class TestRandomizedCursor:
    @pytest.mark.parametrize("factory", FACTORIES)
    def test_conservation(self, factory):
        cur = ExecutionCursor(MM_SCAN, 64, scan_randomizer=factory(MM_SCAN, 0))
        leaves = scans = 0
        while not cur.is_done:
            out = cur.feed_simplified(16)
            leaves += out.leaves
            scans += out.scan_accesses
        assert leaves == MM_SCAN.leaves(64)
        assert scans == MM_SCAN.subtree_scan_total(64)

    def test_invalid_randomizer_rejected(self):
        cur_factory = lambda: ExecutionCursor(
            MM_SCAN, 64, scan_randomizer=lambda size: [1, 2, 3]
        )
        with pytest.raises(SimulationError):
            cur_factory()

    def test_snapshot_carries_randomizer(self):
        cur = ExecutionCursor(
            MM_SCAN, 64, scan_randomizer=random_slot_placement(MM_SCAN, 0)
        )
        snap = cur.snapshot()
        assert snap._randomizer is cur._randomizer


class TestRandomizedSimulation:
    def test_simulator_plumbs_randomizer(self):
        sim = SymbolicSimulator(
            MM_SCAN, 64, scan_randomizer=random_slot_placement(MM_SCAN, 0)
        )
        rec = sim.run_to_completion(itertools.repeat(16))
        assert rec.completed
        assert rec.leaves_done == MM_SCAN.leaves(64)

    def test_randomized_beats_adversary(self):
        # the key phenomenon: randomized placement keeps the ratio well
        # below the deterministic log on the canonical adversary
        n = 4**4
        profile = worst_case_profile(8, 4, n)
        det = SymbolicSimulator(MM_SCAN, n, model="recursive").run(profile)
        assert det.adaptivity_ratio == pytest.approx(5.0)
        ratios = []
        for seed in range(5):
            sim = SymbolicSimulator(
                MM_SCAN,
                n,
                model="recursive",
                scan_randomizer=random_slot_placement(MM_SCAN, seed),
            )
            rec = sim.run_to_completion(
                itertools.chain(iter(profile), itertools.cycle(profile.boxes.tolist()))
            )
            ratios.append(rec.adaptivity_ratio)
        assert sum(ratios) / len(ratios) < 0.7 * det.adaptivity_ratio

    def test_reset_redraws(self):
        sim = SymbolicSimulator(
            MM_SCAN, 64, scan_randomizer=random_slot_placement(MM_SCAN, 0)
        )
        sim.run([10**9])
        sim.reset()
        assert not sim.is_done
