"""Unit tests for the scan-hiding transform."""

import pytest

from repro.errors import SpecError
from repro.algorithms.library import LCS, MM_INPLACE, MM_SCAN, STRASSEN
from repro.algorithms.scan_hiding import (
    hidden_work_per_leaf,
    overhead_factor,
    transform,
)


class TestTransform:
    def test_removes_scans(self):
        hidden = transform(MM_SCAN)
        assert hidden.c == 0.0
        assert hidden.regime == "adaptive"
        assert "scan-hiding" in hidden.name

    def test_preserves_shape(self):
        hidden = transform(MM_SCAN)
        assert (hidden.a, hidden.b) == (MM_SCAN.a, MM_SCAN.b)
        assert hidden.base_size == MM_SCAN.base_size

    def test_strassen_transformable(self):
        assert transform(STRASSEN).regime == "adaptive"

    def test_rejects_adaptive(self):
        with pytest.raises(SpecError):
            transform(MM_INPLACE)

    def test_rejects_degenerate(self):
        with pytest.raises(SpecError):
            transform(LCS)


class TestOverhead:
    def test_per_leaf_burden_converges(self):
        # a > b: per-leaf scan burden is a geometric series -> constant
        values = [hidden_work_per_leaf(MM_SCAN, 4**k) for k in range(2, 8)]
        assert values[-1] - values[-2] < values[1] - values[0]
        assert values[-1] < 2.0  # limit sum_{k>=1} 4^k/8^k = 1

    def test_per_leaf_exact_small(self):
        # n=4: one scan of 4 over 8 leaves
        assert hidden_work_per_leaf(MM_SCAN, 4) == pytest.approx(0.5)

    def test_overhead_factor(self):
        # total work / leaf work = 1 + per-leaf burden
        n = 4**5
        assert overhead_factor(MM_SCAN, n) == pytest.approx(
            1.0 + hidden_work_per_leaf(MM_SCAN, n)
        )

    def test_overhead_bounded(self):
        assert overhead_factor(MM_SCAN, 4**8) < 2.0
