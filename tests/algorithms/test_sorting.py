"""Unit tests for the traced merge sort."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.algorithms.sorting import merge_sort


class TestCorrectness:
    @pytest.mark.parametrize("n", [4, 8, 32, 128])
    def test_sorts(self, n, rng):
        v = rng.integers(0, 1000, n)
        assert np.array_equal(merge_sort(v, record=False).sorted_values, np.sort(v))

    def test_already_sorted(self):
        v = np.arange(16)
        assert np.array_equal(merge_sort(v, record=False).sorted_values, v)

    def test_reverse_sorted(self):
        v = np.arange(16)[::-1].copy()
        assert np.array_equal(merge_sort(v, record=False).sorted_values, np.arange(16))

    def test_duplicates(self):
        v = np.array([3, 1, 3, 1, 2, 2, 3, 1])
        assert np.array_equal(merge_sort(v, record=False).sorted_values, np.sort(v))

    def test_floats(self, rng):
        v = rng.standard_normal(32)
        assert np.allclose(merge_sort(v, record=False).sorted_values, np.sort(v))

    @pytest.mark.parametrize("base_n", [1, 2, 4, 16])
    def test_base_size_invariance(self, base_n, rng):
        v = rng.integers(0, 50, 16)
        assert np.array_equal(
            merge_sort(v, base_n=base_n, record=False).sorted_values, np.sort(v)
        )


class TestTraces:
    def test_leaf_count(self, rng):
        v = rng.integers(0, 50, 32)
        assert merge_sort(v, base_n=4).trace.n_leaves == 8

    def test_input_not_mutated(self, rng):
        v = rng.integers(0, 50, 16)
        copy = v.copy()
        merge_sort(v, record=False)
        assert np.array_equal(v, copy)

    def test_distinct_blocks(self, rng):
        v = rng.integers(0, 50, 16)
        t = merge_sort(v, base_n=4).trace
        assert t.distinct_blocks() == 32  # array + merge buffer


class TestValidation:
    def test_rejects_non_power(self):
        with pytest.raises(TraceError):
            merge_sort(np.arange(6))

    def test_rejects_2d(self):
        with pytest.raises(TraceError):
            merge_sort(np.ones((2, 2)))

    def test_rejects_bad_base(self):
        with pytest.raises(TraceError):
            merge_sort(np.arange(8), base_n=16)
