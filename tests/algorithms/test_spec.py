"""Unit tests for (a,b,c)-regular algorithm specs."""

import pytest

from repro.errors import SpecError
from repro.algorithms.spec import RegularSpec, ScanPlacement


class TestValidation:
    def test_basic(self):
        spec = RegularSpec(8, 4, 1.0)
        assert spec.a == 8 and spec.b == 4

    def test_rejects_bad_a(self):
        with pytest.raises(SpecError):
            RegularSpec(0, 4, 1.0)

    def test_rejects_bad_b(self):
        with pytest.raises(SpecError):
            RegularSpec(8, 1, 1.0)

    def test_rejects_bad_c(self):
        with pytest.raises(SpecError):
            RegularSpec(8, 4, 1.5)
        with pytest.raises(SpecError):
            RegularSpec(8, 4, -0.1)

    def test_rejects_bad_base(self):
        with pytest.raises(SpecError):
            RegularSpec(8, 4, 1.0, base_size=0)

    def test_rejects_bad_placement(self):
        with pytest.raises(SpecError):
            RegularSpec(8, 4, 1.0, scan_placement="middle")

    def test_auto_name(self):
        assert "(8,4,1)" in RegularSpec(8, 4, 1.0).name


class TestDerived:
    def test_exponent(self):
        assert RegularSpec(8, 4, 1.0).exponent == pytest.approx(1.5)
        assert RegularSpec(8, 4, 1.0).exponent_fraction is not None

    def test_regimes(self):
        assert RegularSpec(8, 4, 1.0).regime == "gap"
        assert RegularSpec(8, 4, 0.5).regime == "adaptive"
        assert RegularSpec(2, 4, 1.0).regime == "adaptive"
        assert RegularSpec(4, 4, 1.0).regime == "degenerate"
        assert RegularSpec(8, 4, 0.0).regime == "adaptive"

    def test_worst_case_adaptive(self):
        assert not RegularSpec(8, 4, 1.0).worst_case_adaptive
        assert RegularSpec(8, 4, 0.0).worst_case_adaptive


class TestGeometry:
    def test_depth_and_leaves(self):
        spec = RegularSpec(8, 4, 1.0)
        assert spec.depth(64) == 3
        assert spec.leaves(64) == 512

    def test_base_size_scaling(self):
        spec = RegularSpec(8, 4, 1.0, base_size=4)
        assert spec.depth(64) == 2
        assert spec.leaves(64) == 64

    def test_validate_rejects_non_power(self):
        with pytest.raises(SpecError):
            RegularSpec(8, 4, 1.0).depth(20)
        with pytest.raises(SpecError):
            RegularSpec(8, 4, 1.0, base_size=4).depth(2)

    def test_problem_sizes(self):
        assert RegularSpec(8, 4, 1.0).problem_sizes(64) == [1, 4, 16, 64]

    def test_child_size(self):
        spec = RegularSpec(8, 4, 1.0)
        assert spec.child_size(64) == 16
        with pytest.raises(SpecError):
            spec.child_size(1)


class TestScans:
    def test_scan_length_c1(self):
        assert RegularSpec(8, 4, 1.0).scan_length(64) == 64

    def test_scan_length_c0(self):
        assert RegularSpec(8, 4, 0.0).scan_length(64) == 0

    def test_scan_length_half(self):
        assert RegularSpec(8, 4, 0.5).scan_length(64) == 8

    def test_scan_length_base_case(self):
        assert RegularSpec(8, 4, 1.0).scan_length(1) == 0

    def test_subtree_scan_total(self):
        spec = RegularSpec(8, 4, 1.0)
        # S(n) = 8 S(n/4) + n; S(1) = 0
        assert spec.subtree_scan_total(4) == 4
        assert spec.subtree_scan_total(16) == 8 * 4 + 16
        assert spec.subtree_scan_total(64) == 8 * (8 * 4 + 16) + 64

    def test_subtree_accesses(self):
        spec = RegularSpec(8, 4, 1.0)
        assert spec.subtree_accesses(4) == 8 + 4
        assert spec.subtree_accesses(1) == 1

    def test_scan_pieces_end(self):
        pieces = RegularSpec(8, 4, 1.0).scan_pieces(16)
        assert pieces[:-1] == [0] * 8 and pieces[-1] == 16

    def test_scan_pieces_front(self):
        pieces = RegularSpec(8, 4, 1.0, scan_placement=ScanPlacement.FRONT).scan_pieces(16)
        assert pieces[0] == 16 and sum(pieces[1:]) == 0

    def test_scan_pieces_split_sums(self):
        pieces = RegularSpec(8, 4, 1.0, scan_placement=ScanPlacement.SPLIT).scan_pieces(16)
        assert sum(pieces) == 16
        assert max(pieces) - min(pieces) <= 1

    def test_scan_pieces_zero_scan(self):
        assert RegularSpec(8, 4, 0.0).scan_pieces(16) == [0] * 9


class TestConvenience:
    def test_with_placement(self):
        spec = RegularSpec(8, 4, 1.0).with_placement(ScanPlacement.SPLIT)
        assert spec.scan_placement == ScanPlacement.SPLIT

    def test_with_base_size(self):
        assert RegularSpec(8, 4, 1.0).with_base_size(4).base_size == 4

    def test_describe(self):
        text = RegularSpec(8, 4, 1.0).describe()
        assert "a=8" in text and "regime=gap" in text

    def test_frozen(self):
        spec = RegularSpec(8, 4, 1.0)
        with pytest.raises(Exception):
            spec.a = 9
