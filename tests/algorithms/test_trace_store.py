"""Tests for the compressed digest-keyed ``.npz`` trace store."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.algorithms.library import MM_SCAN
from repro.algorithms.trace_store import (
    TRACE_FORMAT_VERSION,
    load_stored_trace,
    load_trace,
    save_trace,
    store_trace,
    stored_trace_path,
    trace_digest,
)
from repro.algorithms.traces import Trace, synthetic_trace


def _trace(blocks, label="t", block_size=1):
    spans = np.asarray([[0, len(blocks)]], dtype=np.int64)
    return Trace(
        np.asarray(blocks, dtype=np.int64),
        spans,
        block_size=block_size,
        label=label,
    )


class TestRoundTrip:
    def test_synthetic_trace_round_trips(self, tmp_path):
        t = synthetic_trace(MM_SCAN, 64)
        path = tmp_path / "mm.npz"
        digest = save_trace(path, t)
        loaded = load_trace(path)
        assert np.array_equal(loaded.blocks, t.blocks)
        assert np.array_equal(loaded.leaf_spans, t.leaf_spans)
        assert loaded.block_size == t.block_size
        assert loaded.label == t.label
        assert trace_digest(loaded) == digest

    def test_round_trip_preserves_machine_results(self, tmp_path):
        from repro.machine.dam import simulate_dam

        t = synthetic_trace(MM_SCAN, 64)
        path = tmp_path / "mm.npz"
        save_trace(path, t)
        loaded = load_trace(path)
        for m in (4, 16):
            assert simulate_dam(loaded, m) == simulate_dam(t, m)

    def test_compression_actually_compresses(self, tmp_path):
        t = _trace([5] * 50_000)
        path = tmp_path / "flat.npz"
        save_trace(path, t)
        assert path.stat().st_size < t.blocks.nbytes // 10


class TestDigest:
    def test_digest_is_content_addressed(self):
        a = _trace([1, 2, 3])
        b = _trace([1, 2, 3])
        assert trace_digest(a) == trace_digest(b)

    def test_digest_sensitive_to_every_field(self):
        base = _trace([1, 2, 3])
        assert trace_digest(base) != trace_digest(_trace([1, 2, 4]))
        assert trace_digest(base) != trace_digest(
            _trace([1, 2, 3], label="other")
        )
        assert trace_digest(base) != trace_digest(
            _trace([1, 2, 3], block_size=2)
        )
        no_spans = Trace(
            np.asarray([1, 2, 3], dtype=np.int64),
            np.empty((0, 2)),
            label="t",
        )
        assert trace_digest(base) != trace_digest(no_spans)


class TestCorruption:
    def test_digest_mismatch_detected(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        t = _trace([1, 2, 3])
        with open(path, "wb") as fh:
            np.savez_compressed(
                fh,
                format_version=np.int64(TRACE_FORMAT_VERSION),
                blocks=t.blocks,
                leaf_spans=t.leaf_spans,
                block_size=np.int64(1),
                label=np.array("t"),
                digest=np.array("0" * 64),
            )
        with pytest.raises(TraceError, match="digest"):
            load_trace(path)

    def test_unknown_format_version_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        t = _trace([1])
        with open(path, "wb") as fh:
            np.savez_compressed(
                fh,
                format_version=np.int64(TRACE_FORMAT_VERSION + 1),
                blocks=t.blocks,
                leaf_spans=t.leaf_spans,
                block_size=np.int64(1),
                label=np.array("t"),
                digest=np.array(trace_digest(t)),
            )
        with pytest.raises(TraceError, match="format version"):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.npz"
        save_trace(path, _trace([1, 2, 3]))
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(TraceError):
            load_trace(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")


class TestDigestKeyedStore:
    def test_store_and_load_by_digest(self, tmp_path):
        t = synthetic_trace(MM_SCAN, 64)
        path = store_trace(tmp_path / "traces", t)
        digest = trace_digest(t)
        assert path == stored_trace_path(tmp_path / "traces", digest)
        loaded = load_stored_trace(tmp_path / "traces", digest)
        assert loaded is not None
        assert np.array_equal(loaded.blocks, t.blocks)

    def test_store_is_idempotent(self, tmp_path):
        t = _trace([1, 2, 3])
        p1 = store_trace(tmp_path, t)
        mtime = p1.stat().st_mtime_ns
        p2 = store_trace(tmp_path, t)
        assert p1 == p2
        assert p2.stat().st_mtime_ns == mtime

    def test_missing_digest_returns_none(self, tmp_path):
        assert load_stored_trace(tmp_path, "f" * 64) is None


class TestMemoizedSyntheticTrace:
    def test_same_spec_shares_one_trace(self):
        a = synthetic_trace(MM_SCAN, 64)
        b = synthetic_trace(MM_SCAN, 64)
        assert a is b

    def test_distinct_keys_distinct_traces(self):
        a = synthetic_trace(MM_SCAN, 64)
        b = synthetic_trace(MM_SCAN, 64, label="other")
        assert a is not b
        assert np.array_equal(a.blocks, b.blocks)

    def test_memo_exposes_counters(self):
        info = synthetic_trace.cache_info()
        assert info.maxsize >= 1
