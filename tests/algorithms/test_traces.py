"""Unit tests for traces, the recorder, and synthetic trace generation."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.algorithms.library import MM_INPLACE, MM_SCAN, STRASSEN
from repro.algorithms.spec import RegularSpec, ScanPlacement
from repro.algorithms.traces import Trace, TraceRecorder, synthetic_trace


class TestTrace:
    def test_basic(self):
        t = Trace(np.array([1, 2, 1]), np.array([[0, 2]]))
        assert len(t) == 3
        assert t.n_leaves == 1
        assert t.distinct_blocks() == 2

    def test_working_set(self):
        t = Trace(np.array([1, 2, 1, 3]), np.empty((0, 2)))
        assert t.working_set_of_range(0, 3) == 2
        assert t.working_set_of_range(0, 4) == 3
        with pytest.raises(TraceError):
            t.working_set_of_range(2, 1)

    def test_validation(self):
        with pytest.raises(TraceError):
            Trace(np.array([[1]]), np.empty((0, 2)))  # 2-D blocks
        with pytest.raises(TraceError):
            Trace(np.array([1]), np.array([[0, 2]]))  # span beyond trace
        with pytest.raises(TraceError):
            Trace(np.array([1, 2]), np.array([[1, 0]]))  # reversed span
        with pytest.raises(TraceError):
            Trace(np.array([1]), np.array([1]))  # bad span shape

    def test_spans_must_be_sorted(self):
        with pytest.raises(TraceError):
            Trace(np.array([1, 2, 3]), np.array([[2, 3], [0, 1]]))

    def test_immutability(self):
        t = Trace(np.array([1]), np.empty((0, 2)))
        with pytest.raises(ValueError):
            t.blocks[0] = 9

    def test_empty(self):
        t = Trace(np.empty(0, dtype=np.int64), np.empty((0, 2)))
        assert len(t) == 0 and t.distinct_blocks() == 0


class TestTraceRecorder:
    def test_block_division(self):
        rec = TraceRecorder(block_size=4)
        rec.touch(0)
        rec.touch(3)
        rec.touch(4)
        t = rec.build()
        assert t.blocks.tolist() == [0, 0, 1]

    def test_touch_range(self):
        rec = TraceRecorder()
        rec.touch_range(2, 5)
        assert rec.build().blocks.tolist() == [2, 3, 4]

    def test_touch_words_preserves_order_with_pending(self):
        rec = TraceRecorder()
        rec.touch(9)
        rec.touch_words(np.array([1, 2]))
        rec.touch(8)
        assert rec.build().blocks.tolist() == [9, 1, 2, 8]

    def test_leaf_spans(self):
        rec = TraceRecorder()
        rec.touch(0)
        rec.begin_leaf()
        rec.touch(1)
        rec.touch(2)
        rec.end_leaf()
        t = rec.build()
        assert t.leaf_spans.tolist() == [[1, 3]]

    def test_nested_leaf_rejected(self):
        rec = TraceRecorder()
        rec.begin_leaf()
        with pytest.raises(TraceError):
            rec.begin_leaf()

    def test_end_without_begin(self):
        with pytest.raises(TraceError):
            TraceRecorder().end_leaf()

    def test_unclosed_leaf_at_build(self):
        rec = TraceRecorder()
        rec.begin_leaf()
        with pytest.raises(TraceError):
            rec.build()

    def test_invalid_range(self):
        with pytest.raises(TraceError):
            TraceRecorder().touch_range(5, 2)

    def test_empty_build(self):
        t = TraceRecorder().build()
        assert len(t) == 0


class TestSyntheticTrace:
    @pytest.mark.parametrize("spec", [MM_SCAN, MM_INPLACE, STRASSEN])
    def test_distinct_blocks_equals_problem_size(self, spec):
        n = spec.b**3
        t = synthetic_trace(spec, n)
        assert t.distinct_blocks() == n

    def test_leaf_count(self):
        t = synthetic_trace(MM_SCAN, 64)
        assert t.n_leaves == MM_SCAN.leaves(64)

    def test_access_count_matches_spec(self):
        t = synthetic_trace(MM_SCAN, 64)
        assert len(t) == MM_SCAN.subtree_accesses(64)

    def test_subproblem_distinct_blocks(self):
        # Any aligned subproblem's span touches exactly its size in blocks.
        spec = MM_SCAN
        t = synthetic_trace(spec, 64)
        per_child = spec.subtree_accesses(16)
        # child i of the root occupies accesses [i*per_child, (i+1)*...)
        for i in range(spec.a):
            ws = t.working_set_of_range(i * per_child, (i + 1) * per_child)
            assert ws == 16

    @pytest.mark.parametrize(
        "placement", [ScanPlacement.END, ScanPlacement.FRONT, ScanPlacement.SPLIT]
    )
    def test_placements_preserve_geometry(self, placement):
        spec = RegularSpec(8, 4, 1.0, scan_placement=placement)
        t = synthetic_trace(spec, 64)
        assert t.distinct_blocks() == 64
        assert len(t) == spec.subtree_accesses(64)

    def test_base_size(self):
        spec = RegularSpec(8, 4, 1.0, base_size=4)
        t = synthetic_trace(spec, 64)
        assert t.distinct_blocks() == 64
        assert t.n_leaves == spec.leaves(64)

    def test_label(self):
        assert "custom" in synthetic_trace(MM_SCAN, 16, label="custom").label
