"""Unit tests for adaptivity ratios and growth classification."""

import pytest

from repro.errors import SimulationError
from repro.algorithms.library import MM_SCAN
from repro.analysis.adaptivity import (
    RatioSeries,
    adaptivity_ratio,
    worst_case_ratio,
    worst_case_ratio_series,
)
from repro.profiles.square import SquareProfile
from repro.profiles.worst_case import worst_case_profile


class TestAdaptivityRatio:
    def test_single_full_box(self):
        assert adaptivity_ratio(SquareProfile([64]), MM_SCAN, 64) == pytest.approx(1.0)

    def test_clipping(self):
        # one huge box clips to n
        assert adaptivity_ratio(SquareProfile([10**6]), MM_SCAN, 64) == pytest.approx(1.0)

    def test_matches_profile_method(self):
        p = worst_case_profile(8, 4, 64)
        assert adaptivity_ratio(p, MM_SCAN, 64) == pytest.approx(
            p.bounded_potential_sum(64, 1.5) / 64**1.5
        )


class TestWorstCaseRatio:
    def test_exact_log_formula(self):
        for k in range(1, 7):
            assert worst_case_ratio(MM_SCAN, 4**k) == pytest.approx(k + 1)

    def test_series(self):
        ns = [4**k for k in range(2, 5)]
        assert worst_case_ratio_series(MM_SCAN, ns) == pytest.approx([3, 4, 5])


class TestRatioSeries:
    def test_log_series(self):
        ns = tuple(4**k for k in range(2, 8))
        rs = RatioSeries(ns, tuple(float(k + 1) for k in range(2, 8)), base=4.0)
        assert rs.verdict == "logarithmic"
        assert rs.log_slope == pytest.approx(1.0)

    def test_constant_series(self):
        ns = tuple(4**k for k in range(2, 8))
        rs = RatioSeries(ns, (2.0,) * 6, base=4.0)
        assert rs.verdict == "constant"
        assert abs(rs.log_slope) < 1e-9

    def test_from_measurements(self):
        rs = RatioSeries.from_measurements([16, 64], [1.0, 2.0], MM_SCAN)
        assert rs.base == 4.0

    def test_needs_two_points(self):
        with pytest.raises(SimulationError):
            RatioSeries((16,), (1.0,), base=4.0)
