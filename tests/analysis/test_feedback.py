"""Unit tests for the Equation-7/9 feedback diagnostics."""

import pytest

from repro.algorithms.library import MM_INPLACE, MM_SCAN
from repro.analysis.feedback import (
    feedback_report,
    feedback_threshold,
    verify_negative_feedback,
)
from repro.analysis.recurrence import solve_recurrence
from repro.profiles.distributions import PointMass, UniformPowers


class TestFeedbackReport:
    def test_one_record_per_non_base_level(self):
        sol = solve_recurrence(MM_SCAN, 4**5, PointMass(16))
        report = feedback_report(sol)
        assert len(report) == len(sol.levels) - 1
        assert [r.n for r in report] == [rec.n for rec in sol.levels[1:]]

    def test_eq7_sides_definition(self):
        sol = solve_recurrence(MM_SCAN, 4**3, UniformPowers(4, 1, 4))
        report = feedback_report(sol)
        for prev, cur, rec in zip(sol.levels, sol.levels[1:], report):
            assert rec.eq7_lhs == pytest.approx(cur.f_prime / prev.f)
            assert rec.eq7_rhs == pytest.approx(8 * prev.m_n / cur.m_n)
            assert rec.cost_ratio == pytest.approx(cur.cost_ratio)

    def test_point_mass_always_holds(self):
        # boxes exactly one level wide: f'(n) = a f(n/b) and m ratio = a
        sol = solve_recurrence(MM_SCAN, 4**6, PointMass(16))
        assert all(r.pressure_holds for r in feedback_report(sol))
        assert feedback_threshold(sol) == 0.0


class TestNegativeFeedback:
    @pytest.mark.parametrize(
        "dist",
        [PointMass(16), UniformPowers(4, 1, 5), UniformPowers(4, 0, 6)],
        ids=["point", "uniform", "wide-uniform"],
    )
    def test_holds_above_small_constant(self, dist):
        sol = solve_recurrence(MM_SCAN, 4**8, dist)
        assert verify_negative_feedback(sol, C=3.0)
        assert feedback_threshold(sol) < 3.0

    def test_c0_spec_trivially_holds(self):
        sol = solve_recurrence(MM_INPLACE, 4**5, PointMass(16))
        # no scans: f = f', Eq 7 reduces to f(n)/f(n/b) = a <= a * m-ratio
        assert verify_negative_feedback(sol, C=0.5)

    def test_rejects_bad_constant(self):
        sol = solve_recurrence(MM_SCAN, 4**3, PointMass(4))
        with pytest.raises(ValueError):
            verify_negative_feedback(sol, C=0.0)
