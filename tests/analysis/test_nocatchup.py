"""Unit tests for the No-Catch-up (Lemma 2) checker."""

import pytest

from repro.errors import SimulationError
from repro.algorithms.library import MM_SCAN
from repro.analysis.nocatchup import (
    NoCatchupReport,
    check_no_catchup,
    finish_positions,
    require_monotone_starts,
)
from repro.profiles.worst_case import worst_case_profile


class TestFinishPositions:
    def test_start_zero_with_full_profile_finishes(self):
        boxes = list(worst_case_profile(8, 4, 64))
        [finish] = finish_positions(MM_SCAN, 64, boxes, [0])
        assert finish == MM_SCAN.subtree_accesses(64)

    def test_later_start_finishes_weakly_later(self):
        boxes = [4, 4, 16, 4]
        finishes = finish_positions(MM_SCAN, 64, boxes, [0, 5, 20, 100])
        assert finishes == sorted(finishes)

    def test_greedy_model(self):
        boxes = [8, 8, 8]
        finishes = finish_positions(MM_SCAN, 64, boxes, [0, 10], model="greedy")
        assert finishes[0] <= finishes[1]

    def test_unknown_model(self):
        with pytest.raises(SimulationError):
            finish_positions(MM_SCAN, 64, [1], [0], model="magic")


class TestCheckNoCatchup:
    def test_holds_on_worst_case_prefix(self):
        boxes = list(worst_case_profile(8, 4, 64))[:100]
        report = check_no_catchup(MM_SCAN, 64, boxes, samples=32, rng=0)
        assert report.holds
        assert not report.violations

    def test_explicit_starts(self):
        report = check_no_catchup(MM_SCAN, 64, [16, 16], starts=[0, 7, 33])
        assert report.starts == (0, 7, 33)
        assert report.holds

    def test_exhaustive_small_problem(self):
        total = MM_SCAN.subtree_accesses(16)
        report = check_no_catchup(
            MM_SCAN, 16, [4, 4, 16], starts=range(total + 1)
        )
        assert report.holds

    def test_report_shape(self):
        report = check_no_catchup(MM_SCAN, 16, [4], samples=4, rng=1)
        assert isinstance(report, NoCatchupReport)
        assert len(report.starts) == len(report.finishes)


class TestRequireMonotoneStarts:
    """The runtime half of the nocatchup-monotonicity contract."""

    def test_monotone_passes_and_returns_tuple(self):
        assert require_monotone_starts([0, 3, 3, 9]) == (0, 3, 3, 9)

    def test_empty_and_singleton_pass(self):
        assert require_monotone_starts([]) == ()
        assert require_monotone_starts([5]) == (5,)

    def test_inversion_raises_with_positions(self):
        with pytest.raises(SimulationError, match="monotone nondecreasing"):
            require_monotone_starts([0, 9, 4])

    def test_custom_label_in_message(self):
        with pytest.raises(SimulationError, match="box indices"):
            require_monotone_starts([2, 1], what="box indices")

    def test_coerces_numpy_integers(self):
        import numpy as np

        out = require_monotone_starts(np.array([1, 2, 3]))
        assert out == (1, 2, 3)
        assert all(isinstance(s, int) for s in out)

    def test_check_no_catchup_routes_through_contract(self):
        # unsorted explicit starts are sorted (public API contract) and
        # the guarded tuple is the reported tuple
        report = check_no_catchup(MM_SCAN, 64, [16, 16], starts=[33, 0, 7])
        assert report.starts == (0, 7, 33)
