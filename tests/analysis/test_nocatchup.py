"""Unit tests for the No-Catch-up (Lemma 2) checker."""

import pytest

from repro.errors import SimulationError
from repro.algorithms.library import MM_SCAN
from repro.analysis.nocatchup import (
    NoCatchupReport,
    check_no_catchup,
    finish_positions,
)
from repro.profiles.worst_case import worst_case_profile


class TestFinishPositions:
    def test_start_zero_with_full_profile_finishes(self):
        boxes = list(worst_case_profile(8, 4, 64))
        [finish] = finish_positions(MM_SCAN, 64, boxes, [0])
        assert finish == MM_SCAN.subtree_accesses(64)

    def test_later_start_finishes_weakly_later(self):
        boxes = [4, 4, 16, 4]
        finishes = finish_positions(MM_SCAN, 64, boxes, [0, 5, 20, 100])
        assert finishes == sorted(finishes)

    def test_greedy_model(self):
        boxes = [8, 8, 8]
        finishes = finish_positions(MM_SCAN, 64, boxes, [0, 10], model="greedy")
        assert finishes[0] <= finishes[1]

    def test_unknown_model(self):
        with pytest.raises(SimulationError):
            finish_positions(MM_SCAN, 64, [1], [0], model="magic")


class TestCheckNoCatchup:
    def test_holds_on_worst_case_prefix(self):
        boxes = list(worst_case_profile(8, 4, 64))[:100]
        report = check_no_catchup(MM_SCAN, 64, boxes, samples=32, rng=0)
        assert report.holds
        assert not report.violations

    def test_explicit_starts(self):
        report = check_no_catchup(MM_SCAN, 64, [16, 16], starts=[0, 7, 33])
        assert report.starts == (0, 7, 33)
        assert report.holds

    def test_exhaustive_small_problem(self):
        total = MM_SCAN.subtree_accesses(16)
        report = check_no_catchup(
            MM_SCAN, 16, [4, 4, 16], starts=range(total + 1)
        )
        assert report.holds

    def test_report_shape(self):
        report = check_no_catchup(MM_SCAN, 16, [4], samples=4, rng=1)
        assert isinstance(report, NoCatchupReport)
        assert len(report.starts) == len(report.finishes)
