"""Unit tests for Lemma 1's potential functions."""

import pytest

from repro.errors import SimulationError
from repro.algorithms.library import MM_SCAN, STRASSEN
from repro.algorithms.spec import RegularSpec
from repro.analysis.potential import max_progress, measured_potential, potential


class TestPotential:
    def test_power_form(self):
        assert potential(MM_SCAN, 16) == pytest.approx(64.0)

    def test_rho1(self):
        assert potential(MM_SCAN, 4, rho1=2.0) == pytest.approx(16.0)

    def test_rejects_bad_size(self):
        with pytest.raises(SimulationError):
            potential(MM_SCAN, 0)


class TestMaxProgress:
    def test_exact_powers(self):
        assert max_progress(MM_SCAN, 1) == 1
        assert max_progress(MM_SCAN, 4) == 8
        assert max_progress(MM_SCAN, 16) == 64

    def test_between_powers_floors(self):
        assert max_progress(MM_SCAN, 15) == 8
        assert max_progress(MM_SCAN, 17) == 64

    def test_below_base(self):
        spec = RegularSpec(8, 4, 1.0, base_size=4)
        assert max_progress(spec, 2) == 0
        assert max_progress(spec, 4) == 1

    def test_theta_s_e_envelope(self):
        # max_progress(s) is within [ (s/b)^e, s^e ] for powers-adjacent s
        for s in (3, 7, 12, 40, 100):
            got = max_progress(MM_SCAN, s)
            assert (s / 4) ** 1.5 <= got <= s**1.5 + 1e-9


class TestMeasuredPotential:
    def test_matches_exact_with_aligned_start(self):
        for s in (1, 4, 16):
            got = measured_potential(MM_SCAN, 64, s, samples=8, rng=0)
            assert got == max_progress(MM_SCAN, s)

    def test_never_exceeds_exact(self, rng):
        for s in (4, 16, 64):
            got = measured_potential(
                MM_SCAN, 256, s, samples=64, rng=rng, include_aligned=False
            )
            assert got <= max_progress(MM_SCAN, s)

    def test_strassen(self):
        got = measured_potential(STRASSEN, 256, 16, samples=8, rng=0)
        assert got == max_progress(STRASSEN, 16) == 49

    def test_rejects_zero_samples(self):
        with pytest.raises(SimulationError):
            measured_potential(MM_SCAN, 64, 4, samples=0)
