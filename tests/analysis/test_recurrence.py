"""Unit tests for the exact Lemma-3 recurrence solver."""

import math

import numpy as np
import pytest

from repro.errors import DistributionError, SimulationError
from repro.algorithms.library import MM_INPLACE, MM_SCAN, STRASSEN
from repro.algorithms.spec import RegularSpec, ScanPlacement
from repro.analysis.recurrence import (
    expected_boxes,
    expected_cost_ratio,
    expected_scan_boxes,
    scan_boxes_bounds,
    solve_recurrence,
)
from repro.profiles.distributions import (
    BoxDistribution,
    Empirical,
    PointMass,
    UniformPowers,
)


class TestScanRenewalDP:
    def test_zero_length(self):
        assert expected_scan_boxes(0, PointMass(4)) == 0.0

    def test_point_mass_exact(self):
        # scan of 16 with boxes of 4: exactly 4 boxes
        assert expected_scan_boxes(16, PointMass(4)) == pytest.approx(4.0)

    def test_point_mass_rounding_up(self):
        # scan of 17 with boxes of 4: 5 boxes (last one partial)
        assert expected_scan_boxes(17, PointMass(4)) == pytest.approx(5.0)

    def test_two_point_brute_force(self):
        # brute-force expectation by explicit recursion
        dist = BoxDistribution([1, 3], [0.5, 0.5])

        def brute(r):
            if r <= 0:
                return 0.0
            return 1.0 + 0.5 * brute(r - 1) + 0.5 * brute(r - 3)

        for L in (1, 2, 5, 9):
            assert expected_scan_boxes(L, dist) == pytest.approx(brute(L))

    def test_monotone_in_length(self):
        dist = UniformPowers(2, 0, 4)
        values = [expected_scan_boxes(L, dist) for L in (4, 8, 16, 32)]
        assert values == sorted(values)

    def test_wald_bounds_contain_exact(self):
        dist = UniformPowers(4, 1, 4)
        for L in (7, 64, 500, 4096):
            lo, hi = scan_boxes_bounds(L, dist)
            ek = expected_scan_boxes(L, dist)
            assert lo - 1e-9 <= ek <= hi + 1e-9

    def test_lattice_reduction_consistency(self):
        # all boxes multiples of 4: K(L) = K at ceil(L/4) granularity
        dist = BoxDistribution([4, 8], [0.5, 0.5])
        assert expected_scan_boxes(5, dist) == expected_scan_boxes(8, dist)
        assert expected_scan_boxes(9, dist) > expected_scan_boxes(8, dist)

    def test_asymptotic_extension_matches_dp(self):
        # force the asymptotic path by a huge L, then compare the linear
        # prediction against the DP at a moderate anchor
        dist = BoxDistribution([2, 3], [0.5, 0.5])
        mu = dist.mean()
        big = expected_scan_boxes(10**9, dist)
        # renewal: K(L) ~ L/mu + C; recover C from a directly-computed L
        anchor = expected_scan_boxes(50_000, dist)
        c_anchor = anchor - 50_000 / mu
        assert big == pytest.approx(10**9 / mu + c_anchor, rel=1e-6)

    def test_negative_length_rejected(self):
        with pytest.raises(SimulationError):
            expected_scan_boxes(-1, PointMass(1))


class TestSolveRecurrence:
    def test_point_mass_exact_chain(self):
        # boxes of 16 on MM-SCAN: f(16)=1; f(64) = 8*1 + K(64) = 8+4
        sol = solve_recurrence(MM_SCAN, 64, PointMass(16))
        assert sol.level(16).f == pytest.approx(1.0)
        assert sol.level(64).f == pytest.approx(12.0)

    def test_f_monotone_in_n(self):
        sol = solve_recurrence(MM_SCAN, 4**5, UniformPowers(4, 1, 4))
        fs = [rec.f for rec in sol.levels]
        assert fs == sorted(fs)

    def test_q_identity_definition(self):
        dist = UniformPowers(4, 1, 5)
        sol = solve_recurrence(MM_SCAN, 4**4, dist)
        for prev, cur in zip(sol.levels, sol.levels[1:]):
            assert cur.q == pytest.approx(min(1.0, dist.tail(cur.n) * prev.f))

    def test_no_scan_term_for_c0(self):
        sol = solve_recurrence(MM_INPLACE, 64, PointMass(4))
        for rec in sol.levels:
            assert rec.scan_boxes == 0.0
            assert rec.f == rec.f_prime

    def test_base_level_geometric_wait(self):
        spec = RegularSpec(8, 4, 1.0, base_size=4)
        dist = BoxDistribution([1, 4], [0.5, 0.5])
        sol = solve_recurrence(spec, 16, dist)
        assert sol.level(4).f == pytest.approx(2.0)  # 1/P[sigma >= 4]

    def test_rejects_never_completing_distribution(self):
        spec = RegularSpec(8, 4, 1.0, base_size=4)
        with pytest.raises(DistributionError):
            solve_recurrence(spec, 16, PointMass(1))

    def test_rejects_non_end_placement(self):
        spec = RegularSpec(8, 4, 1.0, scan_placement=ScanPlacement.SPLIT)
        with pytest.raises(SimulationError):
            solve_recurrence(spec, 16, PointMass(4))

    def test_scan_dp_false_within_wald(self):
        dist = UniformPowers(4, 1, 4)
        exact = solve_recurrence(MM_SCAN, 4**4, dist, scan_dp=True).f
        approx = solve_recurrence(MM_SCAN, 4**4, dist, scan_dp=False).f
        assert approx == pytest.approx(exact, rel=0.5)

    def test_strassen_irrational_exponent(self):
        sol = solve_recurrence(STRASSEN, 4**3, UniformPowers(4, 1, 4))
        assert sol.cost_ratio > 0


class TestEquationHelpers:
    def test_eq8_product_bounded(self):
        for dist in (PointMass(16), UniformPowers(4, 1, 5)):
            sol = solve_recurrence(MM_SCAN, 4**7, dist)
            assert sol.eq8_product() < 10.0

    def test_eq8_individual_factors_can_exceed_one(self):
        sol = solve_recurrence(MM_SCAN, 4**5, PointMass(16))
        factors = [r.f / r.f_prime for r in sol.levels[1:]]
        assert max(factors) > 1.0

    def test_eq7_violations_listed(self):
        sol = solve_recurrence(MM_SCAN, 4**5, PointMass(16))
        assert isinstance(sol.eq7_violations(), list)

    def test_level_lookup_unknown(self):
        sol = solve_recurrence(MM_SCAN, 16, PointMass(4))
        with pytest.raises(SimulationError):
            sol.level(5)


class TestTopLevelHelpers:
    def test_expected_boxes_matches_solution(self):
        dist = UniformPowers(4, 1, 4)
        assert expected_boxes(MM_SCAN, 4**4, dist) == pytest.approx(
            solve_recurrence(MM_SCAN, 4**4, dist).f
        )

    def test_cost_ratio_equation3(self):
        # cost_ratio = f(n) * m_n / n^e exactly
        dist = PointMass(16)
        n = 4**3
        f = expected_boxes(MM_SCAN, n, dist)
        m_n = dist.bounded_potential_moment(n, 1.5)
        assert expected_cost_ratio(MM_SCAN, n, dist) == pytest.approx(
            f * m_n / n**1.5
        )

    def test_theorem1_boundedness_far_out(self):
        # the expected ratio converges for n far beyond the support
        dist = Empirical([1, 4, 4, 16, 64])
        ratios = [
            expected_cost_ratio(MM_SCAN, 4**k, dist) for k in range(4, 10)
        ]
        increments = np.diff(ratios)
        assert np.all(increments >= -1e-9)
        assert increments[-1] < 0.25 * (increments[0] + 1e-12) + 1e-6
