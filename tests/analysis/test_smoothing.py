"""Unit tests for the smoothing scenario runners.

Directional assertions only (the quantitative versions live in the
experiment suite): worst-case stays log-ish under the three weak
smoothings, collapses under shuffling/i.i.d.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.algorithms.library import MM_SCAN
from repro.analysis.adaptivity import worst_case_ratio
from repro.analysis.smoothing import (
    iid_ratio_trials,
    order_perturbation_trials,
    shuffled_worst_case_trials,
    size_perturbation_trials,
    start_shift_trials,
)
from repro.profiles.distributions import UniformPowers
from repro.profiles.perturbations import discrete_multipliers, uniform_multipliers


class TestIidTrials:
    def test_shape_and_positivity(self):
        out = iid_ratio_trials(MM_SCAN, 64, UniformPowers(4, 1, 4), trials=5, rng=0)
        assert out.shape == (5,)
        assert np.all(out >= 1.0 - 1e-9)

    def test_reproducible(self):
        dist = UniformPowers(4, 1, 4)
        a = iid_ratio_trials(MM_SCAN, 64, dist, trials=4, rng=7)
        b = iid_ratio_trials(MM_SCAN, 64, dist, trials=4, rng=7)
        assert np.array_equal(a, b)

    def test_well_below_worst_case(self):
        n = 4**4
        out = iid_ratio_trials(MM_SCAN, n, UniformPowers(4, 1, 5), trials=8, rng=0)
        assert out.mean() < 0.6 * worst_case_ratio(MM_SCAN, n)


class TestShuffledTrials:
    def test_below_adversarial(self):
        n = 4**4
        out = shuffled_worst_case_trials(MM_SCAN, n, trials=6, rng=0)
        assert out.mean() < 0.7 * worst_case_ratio(MM_SCAN, n)


class TestSizePerturbation:
    def test_identity_multiplier_recovers_worst_case(self):
        n = 4**3
        out = size_perturbation_trials(
            MM_SCAN, n, discrete_multipliers([1.0]), trials=1, rng=0
        )
        assert out[0] == pytest.approx(worst_case_ratio(MM_SCAN, n))

    def test_ratio_grows_with_n(self):
        mult = uniform_multipliers(4.0)
        small = size_perturbation_trials(MM_SCAN, 4**3, mult, trials=6, rng=1).mean()
        large = size_perturbation_trials(MM_SCAN, 4**5, mult, trials=6, rng=1).mean()
        assert large > small


class TestStartShift:
    def test_ratio_grows_with_n(self):
        small = start_shift_trials(MM_SCAN, 4**3, trials=8, rng=2).mean()
        large = start_shift_trials(MM_SCAN, 4**5, trials=8, rng=2).mean()
        assert large > small


class TestOrderPerturbation:
    def test_adversarial_position_a_recovers_worst_case(self):
        n = 4**3
        out = order_perturbation_trials(
            MM_SCAN, n, trials=1, rng=0, adversarial_position=8
        )
        assert out[0] == pytest.approx(worst_case_ratio(MM_SCAN, n))

    def test_kappa_b_grows_with_n(self):
        small = order_perturbation_trials(
            MM_SCAN, 4**3, trials=6, rng=3, completion_divisor=4
        ).mean()
        large = order_perturbation_trials(
            MM_SCAN, 4**5, trials=6, rng=3, completion_divisor=4
        ).mean()
        assert large > small

    def test_invalid_position(self):
        with pytest.raises(SimulationError):
            order_perturbation_trials(
                MM_SCAN, 16, trials=1, adversarial_position=9
            )
