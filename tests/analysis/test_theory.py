"""Closed-form predictions vs the measuring machinery — equality checks."""

import pytest

from repro.errors import SpecError
from repro.algorithms.library import LCS, MM_INPLACE, MM_SCAN, STRASSEN
from repro.algorithms.scan_hiding import overhead_factor
from repro.algorithms.spec import RegularSpec, ScanPlacement
from repro.analysis.recurrence import solve_recurrence
from repro.analysis.theory import (
    point_mass_limit_ratio,
    point_mass_ratio_exact,
    scan_hiding_overhead_limit,
    split_adversary_slope,
    worst_case_ratio_exact,
)
from repro.analysis.adaptivity import worst_case_ratio
from repro.profiles.distributions import PointMass


class TestWorstCaseRatio:
    def test_lattice_case_matches_machinery(self):
        for k in range(1, 8):
            assert worst_case_ratio_exact(MM_SCAN, 4**k) == pytest.approx(
                worst_case_ratio(MM_SCAN, 4**k)
            )

    def test_strassen_general_case_matches_machinery(self):
        for k in range(1, 6):
            assert worst_case_ratio_exact(STRASSEN, 4**k) == pytest.approx(
                worst_case_ratio(STRASSEN, 4**k)
            )

    def test_degenerate_is_depth_plus_one(self):
        assert worst_case_ratio_exact(LCS, 4**5) == pytest.approx(6.0)


class TestPointMassClosedForm:
    def test_limit_is_two_for_mm_scan(self):
        assert point_mass_limit_ratio(MM_SCAN) == pytest.approx(2.0)

    def test_limit_strassen(self):
        assert point_mass_limit_ratio(STRASSEN) == pytest.approx(1 + 4 / 3)

    @pytest.mark.parametrize("s_exp", [0, 1, 2])
    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_exact_formula_matches_solver(self, s_exp, k):
        s, n = 4**s_exp, 4**k
        predicted = point_mass_ratio_exact(MM_SCAN, s, n)
        solved = solve_recurrence(MM_SCAN, n, PointMass(s)).cost_ratio
        assert predicted == pytest.approx(solved, rel=1e-12)

    def test_exact_formula_strassen(self):
        predicted = point_mass_ratio_exact(STRASSEN, 4, 4**5)
        solved = solve_recurrence(STRASSEN, 4**5, PointMass(4)).cost_ratio
        assert predicted == pytest.approx(solved, rel=1e-12)

    def test_converges_to_limit(self):
        far = point_mass_ratio_exact(MM_SCAN, 4, 4**15)
        assert far == pytest.approx(point_mass_limit_ratio(MM_SCAN), abs=1e-3)

    def test_off_lattice_rejected(self):
        with pytest.raises(SpecError):
            point_mass_ratio_exact(MM_SCAN, 3, 4**4)

    def test_non_gap_rejected(self):
        with pytest.raises(SpecError):
            point_mass_limit_ratio(MM_INPLACE)


class TestSplitSlope:
    def test_value_for_mm_scan(self):
        # (a+1)^(1-e) = 9^(-1/2) = 1/3
        assert split_adversary_slope(MM_SCAN) == pytest.approx(1 / 3)

    def test_matches_measured_adversary(self):
        from itertools import chain, cycle

        from repro.profiles.worst_case import matched_worst_case_profile
        from repro.simulation.symbolic import SymbolicSimulator
        from repro.util.fitting import fit_log_law

        spec = MM_SCAN.with_placement(ScanPlacement.SPLIT)
        ns, ratios = [], []
        for k in range(2, 6):
            n = 4**k
            profile = matched_worst_case_profile(spec, n)
            sim = SymbolicSimulator(spec, n, model="recursive")
            rec = sim.run_to_completion(
                chain(iter(profile), cycle(profile.boxes.tolist()))
            )
            ns.append(n)
            ratios.append(rec.adaptivity_ratio)
        slope = fit_log_law(ns, ratios, base=4.0).slope
        assert slope == pytest.approx(split_adversary_slope(MM_SCAN), rel=0.02)


class TestScanHidingOverhead:
    def test_limit_matches_overhead_factor(self):
        limit = scan_hiding_overhead_limit(MM_SCAN)
        assert limit == pytest.approx(2.0)
        assert overhead_factor(MM_SCAN, 4**10) == pytest.approx(limit, abs=1e-2)

    def test_base_size_guard(self):
        with pytest.raises(SpecError):
            scan_hiding_overhead_limit(RegularSpec(8, 4, 1.0, base_size=4))
