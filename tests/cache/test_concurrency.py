"""Multi-process store safety: the put-vs-GC race pin and a torture mix.

Both tests fork real processes against one store directory — advisory
``flock`` coordination only works across separate processes, so
thread-based simulations would not exercise the locking layer at all.

The first test pins the PR-8 bugfix: before per-entry locking,
``Cache.put``'s entry-then-sidecar write sequence could interleave with
a GC eviction's entry-then-sidecar unlink sequence and leave an
orphaned ``.meta-*`` sidecar with no entry.  Under the lock the two
critical sections serialize, so a settled store always has entries and
sidecars paired.
"""

import json
import multiprocessing
import os
import sys
import traceback

import pytest

from repro.cache.gc import GCBudget, collect
from repro.cache.lock import locking_available
from repro.cache.store import Cache, CacheKey
from repro.runtime.artifact import RunArtifact

pytestmark = pytest.mark.skipif(
    not locking_available() or not hasattr(os, "fork"),
    reason="requires POSIX flock and fork",
)

ALL_SEEDS = tuple(range(9))
ROUNDS = 12


def make_artifact(seed: int = 0) -> RunArtifact:
    return RunArtifact(
        experiment_id="x",
        title="T",
        claim="C",
        metrics={"reproduced": True},
        verdict="REPRODUCED",
        seed=seed,
        quick=True,
        wall_time_s=0.25,
        counters={"sim.runs": 1},
        repro_version="1.0.0",
        git_revision="abc1234",
    )


def make_key(seed: int = 0) -> CacheKey:
    # Built directly (fixed fingerprint): worker processes must not pull
    # in the experiment registry just to hammer the store.
    return CacheKey(experiment_id="x", quick=True, seed=seed, fingerprint="f" * 64)


def _exit_on_error(worker, *args) -> None:
    """Run ``worker`` and turn any exception into a nonzero exit code —
    the parent asserts on exit codes, not on shared state."""
    try:
        worker(*args)
    except BaseException:
        traceback.print_exc(file=sys.stderr)
        os._exit(1)
    os._exit(0)


def _writer(root: str, seeds: tuple, rounds: int) -> None:
    store = Cache(root)
    for _ in range(rounds):
        for seed in seeds:
            store.put(make_key(seed), make_artifact(seed))


def _reader(root: str, seeds: tuple, rounds: int) -> None:
    store = Cache(root)
    for _ in range(rounds):
        for seed in seeds:
            entry = store.get(make_key(seed))
            # A miss (evicted or not yet written) is fine; a hit must be
            # the complete, correct artifact — never a torn read.
            if entry is not None:
                assert entry.artifact.seed == seed
                assert entry.artifact.experiment_id == "x"


def _collector(root: str, budget_entries: int, rounds: int) -> None:
    store = Cache(root)
    budget = GCBudget(max_bytes=None, max_entries=budget_entries)
    for _ in range(rounds):
        collect(store, budget)


def _spawn(worker, *args) -> multiprocessing.Process:
    context = multiprocessing.get_context("fork")
    process = context.Process(target=_exit_on_error, args=(worker, *args))
    process.start()
    return process


def _join_all(processes) -> None:
    for process in processes:
        process.join(timeout=120)
    assert all(p.exitcode == 0 for p in processes), [
        p.exitcode for p in processes
    ]


def _orphan_sidecars(store: Cache) -> list:
    orphans = []
    for sidecar in sorted(store.root.rglob(".meta-*")):
        entry = sidecar.parent / sidecar.name[len(".meta-"):]
        if not entry.exists():
            orphans.append(sidecar)
    return orphans


class TestPutVersusCollectRace:
    def test_no_orphaned_sidecars(self, tmp_path):
        """One process puts a key in a loop, another evicts everything
        in a loop; at rest every surviving sidecar has its entry."""
        root = str(tmp_path / "store")
        Cache(root).put(make_key(0), make_artifact(0))
        processes = [
            _spawn(_writer, root, (0,), 40),
            _spawn(_collector, root, 0, 40),
        ]
        _join_all(processes)
        store = Cache(root)
        assert _orphan_sidecars(store) == []
        # and the store is still coherent: a fresh put + get round-trips
        store.put(make_key(0), make_artifact(0))
        assert store.get(make_key(0)).artifact.seed == 0


def _demote_all_to_flat(store: Cache) -> None:
    from repro.cache.gc import sidecar_path

    for path in list(store.iter_entry_paths()):
        flat = store.root / path.name
        path.rename(flat)
        meta = sidecar_path(path)
        if meta.exists():
            meta.rename(sidecar_path(flat))


@pytest.mark.parametrize("layout", ["sharded", "flat"])
class TestMultiWriterTorture:
    def test_concurrent_put_get_collect(self, tmp_path, layout):
        root = str(tmp_path / "store")
        store = Cache(root)
        for seed in ALL_SEEDS:
            store.put(make_key(seed), make_artifact(seed))
        if layout == "flat":
            _demote_all_to_flat(store)
        # Two overlapping writers, a validating reader, and a collector
        # whose budget never evicts (so "no lost entries" is exact): GC
        # sweeps (debris, orphan sidecars, lock reaping, shard pruning)
        # must never destroy a live entry.
        processes = [
            _spawn(_writer, root, ALL_SEEDS[:6], ROUNDS),
            _spawn(_writer, root, ALL_SEEDS[3:], ROUNDS),
            _spawn(_reader, root, ALL_SEEDS, ROUNDS),
            _spawn(_collector, root, len(ALL_SEEDS) + 8, ROUNDS),
        ]
        _join_all(processes)
        # no lost entries, no corrupt survivors
        settled = Cache(root)
        for seed in ALL_SEEDS:
            entry = settled.get(make_key(seed))
            assert entry is not None, f"seed {seed} lost"
            assert entry.artifact.seed == seed
        # every surviving payload parses as strict JSON
        for path in settled.iter_entry_paths():
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert isinstance(payload, dict)
        # a settled collection's accounting sums exactly
        report = collect(settled, GCBudget(max_bytes=None))
        assert report.examined_entries == len(ALL_SEEDS)
        assert (
            report.examined_entries
            == report.evicted_entries + report.surviving_entries
        )
        assert report.surviving_entries == settled.stats().entries
        assert _orphan_sidecars(settled) == []
