"""Unit tests for AST-normalized module fingerprinting.

The invalidation contract: editing an experiment module or anything it
transitively imports (first-party only) changes the fingerprint; editing
comments/whitespace — or modules outside the import closure — does not.
"""

import textwrap

import pytest

from repro.cache.fingerprint import (
    FingerprintError,
    clear_fingerprint_caches,
    fingerprint_module,
    normalized_source_digest,
)


def write(path, source: str) -> None:
    path.write_text(textwrap.dedent(source), encoding="utf-8")


@pytest.fixture
def tree(tmp_path):
    """A fake first-party package: exp -> helper -> leaf, plus an
    unrelated module outside the closure."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    write(pkg / "__init__.py", "")
    write(
        pkg / "exp.py",
        """
        from pkg.helper import double

        def run(x):
            return double(x) + 1
        """,
    )
    write(
        pkg / "helper.py",
        """
        from pkg.leaf import BASE

        def double(x):
            return 2 * x + BASE
        """,
    )
    write(pkg / "leaf.py", "BASE = 0\n")
    write(pkg / "unrelated.py", "def nope():\n    return 0\n")
    clear_fingerprint_caches()
    yield tmp_path
    clear_fingerprint_caches()


def fp(tree):
    clear_fingerprint_caches()
    return fingerprint_module("pkg.exp", root=tree, prefix="pkg")


class TestClosure:
    def test_transitive_first_party_imports_included(self, tree):
        result = fp(tree)
        assert "pkg.exp" in result.modules
        assert "pkg.helper" in result.modules
        assert "pkg.leaf" in result.modules
        assert "pkg" in result.modules  # ancestor package __init__

    def test_unrelated_module_excluded(self, tree):
        assert "pkg.unrelated" not in fp(tree).modules

    def test_relative_imports_resolve(self, tree):
        write(
            tree / "pkg" / "exp.py",
            """
            from .helper import double

            def run(x):
                return double(x)
            """,
        )
        assert "pkg.helper" in fp(tree).modules

    def test_missing_module_raises(self, tree):
        with pytest.raises(FingerprintError):
            clear_fingerprint_caches()
            fingerprint_module("pkg.ghost", root=tree, prefix="pkg")


class TestInvalidation:
    def test_editing_experiment_module_changes_digest(self, tree):
        before = fp(tree).digest
        write(
            tree / "pkg" / "exp.py",
            """
            from pkg.helper import double

            def run(x):
                return double(x) + 2
            """,
        )
        assert fp(tree).digest != before

    def test_editing_transitive_helper_changes_digest(self, tree):
        before = fp(tree).digest
        write(tree / "pkg" / "leaf.py", "BASE = 1\n")
        assert fp(tree).digest != before

    def test_comment_edit_keeps_digest(self, tree):
        before = fp(tree).digest
        write(
            tree / "pkg" / "exp.py",
            """
            # a brand-new comment that must not invalidate the cache
            from pkg.helper import double

            def run(x):
                return double(x) + 1  # trailing commentary
            """,
        )
        assert fp(tree).digest == before

    def test_whitespace_edit_keeps_digest(self, tree):
        before = fp(tree).digest
        write(
            tree / "pkg" / "helper.py",
            """
            from pkg.leaf import BASE


            def double(x):


                return 2 * x + BASE
            """,
        )
        assert fp(tree).digest == before

    def test_editing_unrelated_module_keeps_digest(self, tree):
        before = fp(tree).digest
        write(tree / "pkg" / "unrelated.py", "def nope():\n    return 99\n")
        assert fp(tree).digest == before


class TestNormalizedSourceDigest:
    def test_comment_and_whitespace_invariant(self):
        a = normalized_source_digest("x = 1\n")
        b = normalized_source_digest("# hi\nx  =  1   # bye\n\n")
        assert a == b

    def test_semantic_change_detected(self):
        assert normalized_source_digest("x = 1\n") != normalized_source_digest(
            "x = 2\n"
        )

    def test_docstring_changes_are_semantic(self):
        # ast.dump keeps docstrings: they are part of the module's value.
        assert normalized_source_digest('"""a"""\n') != normalized_source_digest(
            '"""b"""\n'
        )

    def test_syntax_error_raises(self):
        with pytest.raises(FingerprintError):
            normalized_source_digest("def (:\n")


class TestRealRegistry:
    def test_every_experiment_fingerprints(self):
        from repro.cache.store import cache_key_for
        from repro.experiments.registry import EXPERIMENTS

        digests = {
            eid: cache_key_for(eid, True, 0).fingerprint for eid in EXPERIMENTS
        }
        assert all(len(d) == 64 for d in digests.values())
        # closures converge on the shared first-party layers, so digests
        # may coincide; identity comes from the experiment_id in the key
        keys = {cache_key_for(eid, True, 0).digest for eid in EXPERIMENTS}
        assert len(keys) == len(EXPERIMENTS)

    def test_experiment_module_is_in_its_closure(self):
        fp = fingerprint_module("repro.experiments.fig1_worst_case_profile")
        assert "repro.experiments.fig1_worst_case_profile" in fp.modules
        assert len(fp.modules) > 10  # transitive closure, not a single file

    def test_fingerprint_is_deterministic(self):
        first = fingerprint_module("repro.experiments.fig1_worst_case_profile")
        second = fingerprint_module("repro.experiments.fig1_worst_case_profile")
        assert first.digest == second.digest
        assert first.modules == second.modules
