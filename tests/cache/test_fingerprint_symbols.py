"""Per-symbol fingerprint closure (REPRO_CACHE_FINGERPRINT=symbol).

The acceptance pin for call-graph-powered cache keys: a comment-only
edit anywhere keeps every cache entry warm, while editing a single
experiment-private helper invalidates only that experiment's entries —
the other experiments' keys are untouched.
"""

import textwrap

import pytest

from repro.cache.fingerprint import (
    FingerprintError,
    clear_fingerprint_caches,
    fingerprint_mode,
    fingerprint_module,
    fingerprint_symbols,
)
from repro.cache.store import Cache, CacheKey
from repro.runtime.artifact import RunArtifact


def write(path, source: str) -> None:
    path.write_text(textwrap.dedent(source), encoding="utf-8")


@pytest.fixture
def tree(tmp_path):
    """Two experiments: ``exp_a`` has a private helper, both share
    ``common``."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    write(pkg / "__init__.py", "")
    write(
        pkg / "exp_a.py",
        """
        from pkg.common import shared
        from pkg.helper_a import only_a

        EXPERIMENT_ID = "a"

        def run(quick=True, seed=0):
            return only_a(seed) + shared(seed)

        def scratch(x):
            return x - 1
        """,
    )
    write(
        pkg / "exp_b.py",
        """
        from pkg.common import shared

        EXPERIMENT_ID = "b"

        def run(quick=True, seed=0):
            return shared(seed) * 2
        """,
    )
    write(
        pkg / "helper_a.py",
        """
        def only_a(x):
            return x + 1
        """,
    )
    write(
        pkg / "common.py",
        """
        def shared(x):
            return x
        """,
    )
    clear_fingerprint_caches()
    yield tmp_path
    clear_fingerprint_caches()


def fps(tree):
    clear_fingerprint_caches()
    return {
        name: fingerprint_symbols(f"pkg.{name}", root=tree, prefix="pkg")
        for name in ("exp_a", "exp_b")
    }


class TestInvalidationScope:
    def test_comment_only_edit_keeps_every_key_warm(self, tree):
        before = fps(tree)
        for name in ("helper_a", "common", "exp_a", "exp_b"):
            path = tree / "pkg" / f"{name}.py"
            path.write_text(
                "# a comment, reflowed\n" + path.read_text(encoding="utf-8"),
                encoding="utf-8",
            )
        after = fps(tree)
        assert after["exp_a"].digest == before["exp_a"].digest
        assert after["exp_b"].digest == before["exp_b"].digest

    def test_private_helper_edit_invalidates_only_its_experiment(self, tree):
        before = fps(tree)
        write(
            tree / "pkg" / "helper_a.py",
            """
            def only_a(x):
                return x + 2
            """,
        )
        after = fps(tree)
        assert after["exp_a"].digest != before["exp_a"].digest
        assert after["exp_b"].digest == before["exp_b"].digest

    def test_shared_helper_edit_invalidates_both(self, tree):
        before = fps(tree)
        write(
            tree / "pkg" / "common.py",
            """
            def shared(x):
                return x + 1
            """,
        )
        after = fps(tree)
        assert after["exp_a"].digest != before["exp_a"].digest
        assert after["exp_b"].digest != before["exp_b"].digest

    def test_unreachable_sibling_symbol_edit_keeps_key(self, tree):
        """Per-symbol granularity *within* a module: ``scratch`` lives in
        exp_a.py but run() never reaches it."""
        before = fps(tree)
        source = (tree / "pkg" / "exp_a.py").read_text(encoding="utf-8")
        write(
            tree / "pkg" / "exp_a.py",
            source.replace("return x - 1", "return x - 2"),
        )
        after = fps(tree)
        assert after["exp_a"].digest == before["exp_a"].digest

    def test_entry_body_edit_invalidates(self, tree):
        before = fps(tree)
        source = (tree / "pkg" / "exp_a.py").read_text(encoding="utf-8")
        write(
            tree / "pkg" / "exp_a.py",
            source.replace("+ shared(seed)", "+ shared(seed) + 1"),
        )
        after = fps(tree)
        assert after["exp_a"].digest != before["exp_a"].digest

    def test_import_time_surface_edit_invalidates(self, tree):
        """Module-level code runs on import, so it is part of every
        entry key of that module."""
        before = fps(tree)
        source = (tree / "pkg" / "common.py").read_text(encoding="utf-8")
        write(tree / "pkg" / "common.py", source + "\nLIMIT = 7\n")
        after = fps(tree)
        assert after["exp_a"].digest != before["exp_a"].digest

    def test_modules_reflect_reachability(self, tree):
        result = fps(tree)
        assert "pkg.helper_a" in result["exp_a"].modules
        assert "pkg.helper_a" not in result["exp_b"].modules
        assert "pkg.common" in result["exp_b"].modules

    def test_symbol_closure_is_finer_than_module_closure(self, tree):
        """The whole point: module mode invalidates exp_b on a
        helper_a-adjacent edit path that symbol mode scopes away."""
        clear_fingerprint_caches()
        sym = fingerprint_symbols("pkg.exp_b", root=tree, prefix="pkg")
        mod = fingerprint_module("pkg.exp_b", root=tree, prefix="pkg")
        assert set(sym.modules) <= set(mod.modules)
        assert sym.digest != mod.digest  # different key spaces


class TestEntryIndirection:
    """Runners built by partial/decorator/re-export resolve to the code
    that defines them instead of over-approximating to every symbol."""

    def test_partial_entry_tracks_wrapped_impl(self, tree):
        write(
            tree / "pkg" / "exp_p.py",
            """
            import functools

            from pkg.helper_a import only_a

            def _impl(quick=True, seed=0, variant=0):
                return only_a(seed) + variant

            def scratch(x):
                return x - 1

            run = functools.partial(_impl, variant=1)
            """,
        )
        clear_fingerprint_caches()
        before = fingerprint_symbols("pkg.exp_p", root=tree, prefix="pkg")
        # edit the wrapped impl's helper: the key must move
        write(
            tree / "pkg" / "helper_a.py",
            """
            def only_a(x):
                return x + 9
            """,
        )
        clear_fingerprint_caches()
        after = fingerprint_symbols("pkg.exp_p", root=tree, prefix="pkg")
        assert after.digest != before.digest

    def test_decorator_assignment_entry_resolves(self, tree):
        write(
            tree / "pkg" / "exp_d.py",
            """
            from pkg.common import shared

            def _wrap(fn):
                return fn

            def _impl(quick=True, seed=0):
                return shared(seed)

            run = _wrap(_impl)
            """,
        )
        clear_fingerprint_caches()
        before = fingerprint_symbols("pkg.exp_d", root=tree, prefix="pkg")
        write(
            tree / "pkg" / "common.py",
            """
            def shared(x):
                return x - 5
            """,
        )
        clear_fingerprint_caches()
        after = fingerprint_symbols("pkg.exp_d", root=tree, prefix="pkg")
        assert after.digest != before.digest

    def test_reexported_entry_resolves_to_defining_symbol(self, tree):
        write(
            tree / "pkg" / "exp_r.py",
            """
            from pkg.exp_a import run
            """,
        )
        clear_fingerprint_caches()
        fp = fingerprint_symbols("pkg.exp_r", root=tree, prefix="pkg")
        # exp_a.run reaches helper_a; the re-exporting key must too
        assert "pkg.helper_a" in fp.modules
        before = fp
        write(
            tree / "pkg" / "helper_a.py",
            """
            def only_a(x):
                return x * 7
            """,
        )
        clear_fingerprint_caches()
        after = fingerprint_symbols("pkg.exp_r", root=tree, prefix="pkg")
        assert after.digest != before.digest

    def test_reexported_entry_ignores_unreachable_sibling(self, tree):
        write(
            tree / "pkg" / "exp_r.py",
            """
            from pkg.exp_a import run
            """,
        )
        clear_fingerprint_caches()
        before = fingerprint_symbols("pkg.exp_r", root=tree, prefix="pkg")
        # exp_a.scratch is unreachable from run: the key must stay put
        source = (tree / "pkg" / "exp_a.py").read_text(encoding="utf-8")
        write(
            tree / "pkg" / "exp_a.py",
            source.replace("return x - 1", "return x - 3"),
        )
        clear_fingerprint_caches()
        after = fingerprint_symbols("pkg.exp_r", root=tree, prefix="pkg")
        assert after.digest == before.digest


class TestEdgesAndModes:
    def test_missing_module_raises(self, tree):
        with pytest.raises(FingerprintError, match="not found"):
            fingerprint_symbols("pkg.ghost", root=tree, prefix="pkg")

    def test_missing_entry_falls_back_to_whole_module(self, tree):
        # helper_a has no `run`: the sound fallback is all its symbols
        fp = fingerprint_symbols("pkg.helper_a", root=tree, prefix="pkg")
        assert "pkg.helper_a" in fp.modules

    def test_deterministic_across_calls(self, tree):
        first = fps(tree)
        second = fps(tree)
        assert first["exp_a"].digest == second["exp_a"].digest
        assert first["exp_b"].digest == second["exp_b"].digest

    def test_mode_default_is_symbol(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_FINGERPRINT", raising=False)
        assert fingerprint_mode() == "symbol"

    def test_mode_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_FINGERPRINT", "module")
        assert fingerprint_mode() == "module"
        monkeypatch.setenv("REPRO_CACHE_FINGERPRINT", " SYMBOL ")
        assert fingerprint_mode() == "symbol"

    def test_mode_garbage_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_FINGERPRINT", "per-function")
        with pytest.raises(FingerprintError, match="REPRO_CACHE_FINGERPRINT"):
            fingerprint_mode()


def make_artifact(experiment_id: str) -> RunArtifact:
    return RunArtifact(
        experiment_id=experiment_id,
        title="T",
        claim="C",
        metrics={"reproduced": True},
        verdict="REPRODUCED",
        seed=0,
        quick=True,
        wall_time_s=0.25,
        counters={},
        repro_version="1.0.0",
        git_revision="abc1234",
    )


class TestStoreIntegration:
    """End-to-end: cache entries stay warm/invalid exactly per scope."""

    def keys(self, tree):
        result = fps(tree)
        return {
            name: CacheKey(
                experiment_id=name,
                quick=True,
                seed=0,
                fingerprint=result[name].digest,
            )
            for name in ("exp_a", "exp_b")
        }

    def test_entries_warm_until_their_code_changes(self, tree, tmp_path):
        store = Cache(tmp_path / "store")
        before = self.keys(tree)
        store.put(before["exp_a"], make_artifact("exp_a"))
        store.put(before["exp_b"], make_artifact("exp_b"))

        # comment-only sweep: both entries still hit
        path = tree / "pkg" / "helper_a.py"
        path.write_text(
            "# reviewed\n" + path.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        warm = self.keys(tree)
        assert store.get(warm["exp_a"]) is not None
        assert store.get(warm["exp_b"]) is not None

        # semantic edit to exp_a's private helper: only exp_a misses
        write(
            tree / "pkg" / "helper_a.py",
            """
            def only_a(x):
                return x * 3
            """,
        )
        after = self.keys(tree)
        assert store.get(after["exp_a"]) is None
        assert store.get(after["exp_b"]) is not None


class TestThreadSafety:
    def test_concurrent_fingerprints_are_deterministic(self, tree):
        # The serve daemon fingerprints from executor threads (the store
        # fast path; every jobs=0 execute).  The shared incremental
        # GraphBuilder must not be extended by two threads at once —
        # unserialized, concurrent builds corrupt the graph and emit
        # nondeterministic digests, i.e. wrong cache keys.
        import threading
        from concurrent.futures import ThreadPoolExecutor

        reference = fps(tree)  # sequential oracle
        clear_fingerprint_caches()
        barrier = threading.Barrier(8)

        def one(name):
            barrier.wait()  # maximize overlap on the cold caches
            return fingerprint_symbols(
                f"pkg.{name}", root=tree, prefix="pkg"
            ).digest

        names = ["exp_a", "exp_b"] * 4
        with ThreadPoolExecutor(max_workers=8) as pool:
            digests = list(pool.map(one, names))
        for name, digest in zip(names, digests):
            assert digest == reference[name].digest
