"""Unit tests for the budgeted artifact-store GC (repro.cache.gc)."""

import json
import os
import threading

import pytest

from repro.cache.gc import (
    DEFAULT_MAX_BYTES,
    AccessRecord,
    GCBudget,
    auto_collect,
    buffered_access_records,
    collect,
    iter_debris,
    read_access_record,
    read_gc_state,
    sidecar_path,
    write_access_record,
)
from repro.cache.store import Cache, CacheKey
from repro.errors import CacheError
from repro.runtime.artifact import RunArtifact

NOW = 1_000_000.0  # fixed "current time" handed to collect()


def make_artifact(**overrides) -> RunArtifact:
    base = dict(
        experiment_id="x",
        title="T",
        claim="C",
        metrics={"reproduced": True},
        verdict="REPRODUCED",
        seed=0,
        quick=True,
        wall_time_s=0.25,
        counters={"sim.runs": 1},
        repro_version="1.0.0",
        git_revision="abc1234",
    )
    base.update(overrides)
    return RunArtifact(**base)


def make_key(**overrides) -> CacheKey:
    base = dict(experiment_id="x", quick=True, seed=0, fingerprint="f" * 64)
    base.update(overrides)
    return CacheKey(**base)


def put_aged(store, seed, last_access, size_bytes=None):
    """Put one entry and pin its sidecar to an explicit access record,
    so eviction order is deterministic regardless of real clock time."""
    key = make_key(seed=seed)
    path = store.put(key, make_artifact(seed=seed))
    if size_bytes is None:
        size_bytes = path.stat().st_size
    write_access_record(
        path,
        AccessRecord(
            created=last_access,
            last_access=last_access,
            hits=0,
            size_bytes=size_bytes,
        ),
    )
    return key, path


class TestSidecars:
    def test_put_writes_hidden_sidecar(self, tmp_path):
        store = Cache(tmp_path / "store")
        path = store.put(make_key(), make_artifact())
        meta = sidecar_path(path)
        assert meta.name.startswith(".")
        record = read_access_record(path)
        assert record is not None
        assert record.hits == 0
        assert record.size_bytes == path.stat().st_size
        assert record.created == record.last_access

    def test_get_bumps_hits_and_last_access(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        path = store.put(key, make_artifact())
        before = read_access_record(path)
        assert store.get(key) is not None
        assert store.get(key) is not None
        after = read_access_record(path)
        assert after.hits == before.hits + 2
        assert after.last_access >= before.last_access
        assert after.created == before.created

    def test_sidecar_invisible_to_entry_iteration(self, tmp_path):
        store = Cache(tmp_path / "store")
        store.put(make_key(), make_artifact())
        paths = list(store.iter_entry_paths())
        assert len(paths) == 1
        assert not paths[0].name.startswith(".")
        # and iterating entries must not destroy the sidecar
        assert len(list(store.iter_entries())) == 1
        assert read_access_record(paths[0]) is not None

    def test_corrupt_sidecar_tolerated(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        path = store.put(key, make_artifact())
        sidecar_path(path).write_text("{broken", encoding="utf-8")
        assert read_access_record(path) is None
        # get still hits and re-synthesizes the record
        assert store.get(key) is not None
        assert read_access_record(path) is not None

    def test_unknown_sidecar_version_ignored(self, tmp_path):
        store = Cache(tmp_path / "store")
        path = store.put(make_key(), make_artifact())
        payload = json.loads(sidecar_path(path).read_text(encoding="utf-8"))
        payload["sidecar_version"] = 99
        sidecar_path(path).write_text(json.dumps(payload), encoding="utf-8")
        assert read_access_record(path) is None

    def test_missing_sidecar_synthesized_by_gc(self, tmp_path):
        # a pre-GC store has entries but no sidecars; collect must still
        # inventory them (from mtime) instead of skipping or crashing
        store = Cache(tmp_path / "store")
        path = store.put(make_key(), make_artifact())
        sidecar_path(path).unlink()
        report = collect(store, GCBudget(max_bytes=None), now=NOW)
        assert report.examined_entries == 1
        assert report.surviving_entries == 1


class TestBufferedAccessRecords:
    def test_writes_deferred_until_flush(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        with buffered_access_records():
            path = store.put(key, make_artifact())
            assert read_access_record(path) is None  # nothing on disk yet
            assert store.get(key) is not None
            assert store.get(key) is not None
            assert read_access_record(path) is None
        record = read_access_record(path)
        assert record is not None
        assert record.hits == 2
        assert record.size_bytes == path.stat().st_size

    def test_one_sidecar_write_per_entry(self, tmp_path, monkeypatch):
        from repro.cache import gc as gc_mod

        store = Cache(tmp_path / "store")
        key = make_key()
        writes = []
        real_write = gc_mod.write_access_record

        def counting_write(entry_path, record):
            writes.append(entry_path)
            real_write(entry_path, record)

        monkeypatch.setattr(gc_mod, "write_access_record", counting_write)
        with buffered_access_records():
            store.put(key, make_artifact())
            for _ in range(5):
                assert store.get(key) is not None
        assert len(writes) == 1  # 1 put + 5 hits coalesced into one write

    def test_hits_without_put_fold_into_existing_sidecar(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        path = store.put(key, make_artifact())
        before = read_access_record(path)
        with buffered_access_records():
            assert store.get(key) is not None
            assert store.get(key) is not None
        after = read_access_record(path)
        assert after.hits == before.hits + 2
        assert after.created == before.created

    def test_vanished_entry_skipped_at_flush(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        with buffered_access_records():
            path = store.put(key, make_artifact())
            path.unlink()  # concurrent clear/gc between access and flush
        assert read_access_record(path) is None

    def test_nested_blocks_flush_once_at_outermost_exit(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        with buffered_access_records():
            path = store.put(key, make_artifact())
            with buffered_access_records():
                assert store.get(key) is not None
            # the inner exit must NOT flush: the outer buffer owns it
            assert read_access_record(path) is None
        record = read_access_record(path)
        assert record is not None and record.hits == 1

    def test_flush_happens_even_on_error(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        with pytest.raises(RuntimeError):
            with buffered_access_records():
                path = store.put(key, make_artifact())
                raise RuntimeError("boom")
        assert read_access_record(path) is not None

    def test_immediate_writes_resume_after_block(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        with buffered_access_records():
            path = store.put(key, make_artifact())
        assert store.get(key) is not None  # outside: immediate write
        assert read_access_record(path).hits == 1


class TestEvictionOrder:
    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        store = Cache(tmp_path / "store")
        keys = {}
        for seed, age in [(0, NOW - 300), (1, NOW - 100), (2, NOW - 200)]:
            keys[seed], _ = put_aged(store, seed, age)
        report = collect(
            store, GCBudget(max_bytes=None, max_entries=2), now=NOW
        )
        assert report.evicted_entries == 1
        assert report.evictions[0].reason == "entries"
        assert report.evictions[0].digest == keys[0].digest  # the oldest
        assert store.get(keys[0]) is None
        assert store.get(keys[1]) is not None
        assert store.get(keys[2]) is not None

    def test_max_bytes_evicts_oldest_until_under_budget(self, tmp_path):
        store = Cache(tmp_path / "store")
        keys = {}
        for seed, age in [(0, NOW - 300), (1, NOW - 200), (2, NOW - 100)]:
            keys[seed], _ = put_aged(store, seed, age, size_bytes=100)
        report = collect(store, GCBudget(max_bytes=150), now=NOW)
        assert [e.digest for e in report.evictions] == [
            keys[0].digest,
            keys[1].digest,
        ]
        assert {e.reason for e in report.evictions} == {"bytes"}
        assert report.surviving_entries == 1
        assert report.surviving_bytes == 100
        assert store.get(keys[2]) is not None

    def test_max_age_evicts_only_expired(self, tmp_path):
        store = Cache(tmp_path / "store")
        stale, _ = put_aged(store, 0, NOW - 3 * 86400.0)
        fresh, _ = put_aged(store, 1, NOW - 600.0)
        report = collect(
            store, GCBudget(max_bytes=None, max_age_days=1.0), now=NOW
        )
        assert report.evicted_entries == 1
        assert report.evictions[0].reason == "age"
        assert store.get(stale) is None
        assert store.get(fresh) is not None

    def test_equal_age_evicts_larger_first(self, tmp_path):
        store = Cache(tmp_path / "store")
        small, _ = put_aged(store, 0, NOW - 100, size_bytes=10)
        big, _ = put_aged(store, 1, NOW - 100, size_bytes=5000)
        report = collect(
            store, GCBudget(max_bytes=None, max_entries=1), now=NOW
        )
        assert report.evicted_entries == 1
        assert report.evictions[0].digest == big.digest
        assert store.get(small) is not None

    def test_eviction_removes_sidecar_and_empty_shard(self, tmp_path):
        store = Cache(tmp_path / "store")
        key, path = put_aged(store, 0, NOW - 100)
        collect(store, GCBudget(max_bytes=None, max_entries=0), now=NOW)
        assert not path.exists()
        assert not sidecar_path(path).exists()
        assert not path.parent.exists()  # empty shard dir pruned

    def test_dry_run_deletes_nothing(self, tmp_path):
        store = Cache(tmp_path / "store")
        key, path = put_aged(store, 0, NOW - 100)
        report = collect(
            store, GCBudget(max_bytes=None, max_entries=0), dry_run=True,
            now=NOW,
        )
        assert report.dry_run
        assert report.evicted_entries == 1
        assert path.exists()
        assert store.get(key) is not None
        # dry runs must not pollute the persistent counters either
        assert read_gc_state(store.root) is None

    def test_unlimited_budget_keeps_everything(self, tmp_path):
        store = Cache(tmp_path / "store")
        for seed in range(3):
            put_aged(store, seed, NOW - seed * 100)
        report = collect(store, GCBudget(max_bytes=None), now=NOW)
        assert report.evicted_entries == 0
        assert report.surviving_entries == 3

    def test_missing_store_is_empty_report(self, tmp_path):
        report = collect(Cache(tmp_path / "ghost"), GCBudget(), now=NOW)
        assert report.examined_entries == 0
        assert report.evicted_entries == 0


class TestDebris:
    def test_orphaned_tmp_reaped_past_grace(self, tmp_path):
        store = Cache(tmp_path / "store")
        store.put(make_key(), make_artifact())
        shard = next(store.iter_entry_paths()).parent
        old = shard / ".tmp-orphan.json"
        old.write_text("partial", encoding="utf-8")
        os.utime(old, (NOW - 7200, NOW - 7200))
        young = store.root / ".tmp-inflight.json"
        young.write_text("partial", encoding="utf-8")
        os.utime(young, (NOW - 10, NOW - 10))
        report = collect(store, GCBudget(max_bytes=None), now=NOW)
        assert report.reaped_tmp_files == 1
        assert not old.exists()
        assert young.exists()  # within the grace window: maybe in flight

    def test_zero_grace_reaps_fresh_debris(self, tmp_path):
        store = Cache(tmp_path / "store")
        store.root.mkdir(parents=True)
        debris = store.root / ".tmp-now.json"
        debris.write_text("x", encoding="utf-8")
        os.utime(debris, (NOW, NOW))
        report = collect(
            store, GCBudget(max_bytes=None, tmp_grace_s=0.0), now=NOW + 10
        )
        assert report.reaped_tmp_files == 1
        assert not debris.exists()

    def test_orphan_sidecar_reaped(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        path = store.put(key, make_artifact())
        path.unlink()  # entry gone, sidecar left behind
        meta = sidecar_path(path)
        assert meta.exists()
        report = collect(store, GCBudget(max_bytes=None), now=NOW)
        assert report.reaped_tmp_files == 1
        assert not meta.exists()

    def test_iter_debris_sees_root_and_shard_levels(self, tmp_path):
        store = Cache(tmp_path / "store")
        store.put(make_key(), make_artifact())
        shard = next(store.iter_entry_paths()).parent
        (store.root / ".tmp-a").write_text("x", encoding="utf-8")
        (shard / ".tmp-b").write_text("x", encoding="utf-8")
        assert len(list(iter_debris(store.root))) == 2

    def test_stats_counts_debris_without_reaping(self, tmp_path):
        store = Cache(tmp_path / "store")
        store.put(make_key(), make_artifact())
        debris = store.root / ".tmp-a"
        debris.write_text("xyz", encoding="utf-8")
        stats = store.stats()
        assert stats.entries == 1
        assert stats.tmp_files == 1
        assert stats.tmp_bytes == 3
        assert debris.exists()


class TestGCState:
    def test_counters_accumulate_across_collections(self, tmp_path):
        store = Cache(tmp_path / "store")
        put_aged(store, 0, NOW - 200)
        put_aged(store, 1, NOW - 100)
        collect(store, GCBudget(max_bytes=None, max_entries=1), now=NOW)
        collect(store, GCBudget(max_bytes=None, max_entries=0), now=NOW)
        state = read_gc_state(store.root)
        assert state["collections"] == 2
        assert state["evicted_entries"] == 2
        assert state["last"]["evicted_entries"] == 1
        assert state["last"]["timestamp"] == NOW

    def test_stats_surfaces_gc_state(self, tmp_path):
        store = Cache(tmp_path / "store")
        put_aged(store, 0, NOW - 100)
        assert store.stats().gc is None
        collect(store, GCBudget(max_bytes=None, max_entries=0), now=NOW)
        stats = store.stats()
        assert stats.gc["collections"] == 1
        assert stats.gc["evicted_entries"] == 1

    def test_corrupt_state_treated_as_absent(self, tmp_path):
        store = Cache(tmp_path / "store")
        store.root.mkdir(parents=True)
        (store.root / ".gc-state.json").write_text("{oops", encoding="utf-8")
        assert read_gc_state(store.root) is None


class TestBudgetFromEnv:
    def test_defaults(self, monkeypatch):
        for name in (
            "REPRO_CACHE_MAX_BYTES",
            "REPRO_CACHE_MAX_ENTRIES",
            "REPRO_CACHE_MAX_AGE_DAYS",
        ):
            monkeypatch.delenv(name, raising=False)
        budget = GCBudget.from_env()
        assert budget.max_bytes == DEFAULT_MAX_BYTES
        assert budget.max_entries is None
        assert budget.max_age_days is None

    def test_values_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1234")
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "7")
        monkeypatch.setenv("REPRO_CACHE_MAX_AGE_DAYS", "2.5")
        budget = GCBudget.from_env()
        assert budget.max_bytes == 1234
        assert budget.max_entries == 7
        assert budget.max_age_days == 2.5

    def test_nonpositive_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "-1")
        monkeypatch.setenv("REPRO_CACHE_MAX_AGE_DAYS", "0")
        budget = GCBudget.from_env()
        assert budget.max_bytes is None
        assert budget.max_entries is None
        assert budget.max_age_days is None

    def test_garbage_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "a lot")
        with pytest.raises(CacheError):
            GCBudget.from_env()


class TestAutoCollect:
    def test_disabled_by_env(self, tmp_path, monkeypatch):
        store = Cache(tmp_path / "store")
        store.put(make_key(), make_artifact())
        monkeypatch.setenv("REPRO_CACHE_GC", "off")
        assert auto_collect(store.root) is None
        assert read_gc_state(store.root) is None

    def test_missing_store_is_noop(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_GC", raising=False)
        assert auto_collect(tmp_path / "ghost") is None

    def test_collects_under_env_budget(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_GC", raising=False)
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "1")
        store = Cache(tmp_path / "store")
        put_aged(store, 0, NOW - 200)
        put_aged(store, 1, NOW - 100)
        report = auto_collect(store.root)
        assert report is not None
        assert report.evicted_entries == 1
        assert store.stats().entries == 1


class TestRunnerAutoGC:
    def test_run_triggers_auto_gc(self, tmp_path, monkeypatch):
        from repro.runtime.runner import ExperimentRunner

        root = tmp_path / "store"
        monkeypatch.delenv("REPRO_CACHE_GC", raising=False)
        ExperimentRunner(cache="auto", cache_dir=str(root)).run(["fig1"])
        state = read_gc_state(Cache(root).root)
        assert state is not None
        assert state["collections"] == 1
        assert state["evicted_entries"] == 0  # fresh store, under budget

    def test_run_respects_gc_off(self, tmp_path, monkeypatch):
        from repro.runtime.runner import ExperimentRunner

        root = tmp_path / "store"
        monkeypatch.setenv("REPRO_CACHE_GC", "off")
        ExperimentRunner(cache="auto", cache_dir=str(root)).run(["fig1"])
        assert read_gc_state(Cache(root).root) is None

    def test_cache_off_never_collects(self, tmp_path, monkeypatch):
        from repro.runtime.runner import ExperimentRunner

        root = tmp_path / "store"
        monkeypatch.delenv("REPRO_CACHE_GC", raising=False)
        ExperimentRunner(cache="off", cache_dir=str(root)).run(["fig1"])
        assert not root.exists()

    def test_run_enforces_entry_budget(self, tmp_path, monkeypatch):
        from repro.runtime.runner import ExperimentRunner

        root = tmp_path / "store"
        monkeypatch.delenv("REPRO_CACHE_GC", raising=False)
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "1")
        runner = ExperimentRunner(cache="auto", cache_dir=str(root))
        runner.run(["fig1", "mmcount"])
        assert Cache(root).stats().entries == 1


class TestConcurrency:
    def test_get_during_gc_is_a_clean_miss_or_hit(self, tmp_path):
        store = Cache(tmp_path / "store")
        keys = [put_aged(store, seed, NOW - 100 - seed)[0] for seed in range(6)]
        errors = []

        def reader():
            try:
                for _ in range(50):
                    for key in keys:
                        entry = store.get(key)
                        assert entry is None or entry.key == key
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        # evict everything while the readers hammer get()
        collect(store, GCBudget(max_bytes=None, max_entries=0), now=NOW)
        for t in threads:
            t.join()
        assert errors == []
        # a racing record_hit may have resurrected a sidecar after its
        # entry died; a follow-up collection must reap it as an orphan
        report = collect(
            store, GCBudget(max_bytes=None, tmp_grace_s=0.0), now=NOW
        )
        assert report.surviving_entries == 0
        assert list(iter_debris(store.root)) == []


def put_dated(store, seed, created, last_access, size_bytes=None):
    """Put one entry with independent creation and last-access stamps
    (lifetime budgets read creation, age budgets read last access)."""
    key = make_key(seed=seed)
    path = store.put(key, make_artifact(seed=seed))
    if size_bytes is None:
        size_bytes = path.stat().st_size
    write_access_record(
        path,
        AccessRecord(
            created=created,
            last_access=last_access,
            hits=5,
            size_bytes=size_bytes,
        ),
    )
    return key, path


class TestLifetimeBudget:
    def test_often_hit_ancient_entry_expires(self, tmp_path):
        """The budget's reason to exist: max_age_days never evicts an
        entry that keeps hitting, max_lifetime_days does."""
        store = Cache(tmp_path / "store")
        ancient, _ = put_dated(
            store, 0, created=NOW - 10 * 86400.0, last_access=NOW - 60.0
        )
        young, _ = put_dated(
            store, 1, created=NOW - 86400.0, last_access=NOW - 60.0
        )
        # age-only budget keeps both: last access is recent
        report = collect(
            store, GCBudget(max_bytes=None, max_age_days=7.0), now=NOW
        )
        assert report.evicted_entries == 0
        # lifetime budget evicts by creation time despite the fresh hits
        report = collect(
            store, GCBudget(max_bytes=None, max_lifetime_days=7.0), now=NOW
        )
        assert report.evicted_entries == 1
        assert report.evictions[0].reason == "lifetime"
        assert store.get(ancient) is None
        assert store.get(young) is not None

    def test_lifetime_step_precedes_age_step(self, tmp_path):
        store = Cache(tmp_path / "store")
        both, _ = put_dated(
            store, 0, created=NOW - 10 * 86400.0, last_access=NOW - 5 * 86400.0
        )
        report = collect(
            store,
            GCBudget(max_bytes=None, max_age_days=2.0, max_lifetime_days=7.0),
            now=NOW,
        )
        assert [e.reason for e in report.evictions] == ["lifetime"]

    def test_dry_run_counts_without_deleting(self, tmp_path):
        store = Cache(tmp_path / "store")
        key, path = put_dated(
            store, 0, created=NOW - 10 * 86400.0, last_access=NOW
        )
        report = collect(
            store,
            GCBudget(max_bytes=None, max_lifetime_days=7.0),
            dry_run=True,
            now=NOW,
        )
        assert report.evicted_entries == 1
        assert path.exists()
        assert store.get(key) is not None

    def test_env_var_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_LIFETIME_DAYS", "14")
        assert GCBudget.from_env().max_lifetime_days == 14.0
        monkeypatch.setenv("REPRO_CACHE_MAX_LIFETIME_DAYS", "0")
        assert GCBudget.from_env().max_lifetime_days is None
        monkeypatch.delenv("REPRO_CACHE_MAX_LIFETIME_DAYS")
        assert GCBudget.from_env().max_lifetime_days is None

    def test_env_garbage_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_LIFETIME_DAYS", "fortnight")
        with pytest.raises(CacheError):
            GCBudget.from_env()

    def test_cli_flag_overrides(self, tmp_path, capsys):
        from datetime import datetime, timezone

        from repro.cli import main

        store = Cache(tmp_path / "store")
        real_now = datetime.now(timezone.utc).timestamp()
        put_dated(
            store,
            0,
            created=real_now - 30 * 86400.0,
            last_access=real_now - 60.0,
        )
        argv = ["cache", "gc", "--cache-dir", str(store.root)]
        assert main(argv + ["--max-lifetime-days", "7"]) == 0
        out = capsys.readouterr().out
        assert "(lifetime)" in out
        assert "evicted 1/1" in out
