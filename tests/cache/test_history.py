"""Unit tests for the longitudinal bench history (repro.cache.history)."""

import json

import pytest

from repro.cache.history import (
    HISTORY_SCHEMA_VERSION,
    append_record,
    check_regression,
    empty_history,
    load_history,
    render_trend,
)
from repro.errors import CacheError


def record(
    speedup=10.0,
    environment="py3.11-numpy1-scipy1",
    quick=True,
    jobs=1,
    revision="abc1234",
) -> dict:
    """One bench payload shaped like run_cache_bench's output."""
    return {
        "bench_schema_version": 1,
        "benchmark": "cache-cold-vs-warm",
        "quick": quick,
        "seed": 0,
        "jobs": jobs,
        "experiments": ["fig1"],
        "cold_wall_time_s": 1.0,
        "warm_wall_time_s": 1.0 / speedup,
        "speedup": speedup,
        "warm_hits": 1,
        "bit_identical": True,
        "cache_root": "/tmp/x",
        "environment": environment,
        "repro_version": "1.0.0",
        "git_revision": revision,
    }


class TestLoadAppend:
    def test_missing_file_is_empty_history(self, tmp_path):
        history = load_history(tmp_path / "BENCH_cache.json")
        assert history == empty_history()
        assert history["records"] == []

    def test_appends_accumulate_in_order(self, tmp_path):
        path = tmp_path / "BENCH_cache.json"
        append_record(path, record(speedup=10.0, revision="aaa"))
        history = append_record(path, record(speedup=12.0, revision="bbb"))
        assert [r["git_revision"] for r in history["records"]] == [
            "aaa",
            "bbb",
        ]
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["history_schema_version"] == HISTORY_SCHEMA_VERSION
        assert len(on_disk["records"]) == 2

    def test_legacy_single_record_migrated(self, tmp_path):
        # PR-3 wrote one bare bench payload; it must become record 0
        path = tmp_path / "BENCH_cache.json"
        path.write_text(
            json.dumps(record(speedup=8.0, revision="legacy")),
            encoding="utf-8",
        )
        history = load_history(path)
        assert len(history["records"]) == 1
        assert history["records"][0]["git_revision"] == "legacy"
        appended = append_record(path, record(speedup=9.0, revision="new"))
        assert [r["git_revision"] for r in appended["records"]] == [
            "legacy",
            "new",
        ]

    def test_corrupt_history_is_loud(self, tmp_path):
        path = tmp_path / "BENCH_cache.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CacheError):
            load_history(path)

    def test_unknown_schema_version_refused(self, tmp_path):
        path = tmp_path / "BENCH_cache.json"
        payload = empty_history()
        payload["history_schema_version"] = 99
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(CacheError):
            load_history(path)

    def test_non_object_payload_refused(self, tmp_path):
        path = tmp_path / "BENCH_cache.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(CacheError):
            load_history(path)

    def test_missing_records_list_refused(self, tmp_path):
        path = tmp_path / "BENCH_cache.json"
        payload = empty_history()
        payload["records"] = "nope"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(CacheError):
            load_history(path)

    def test_append_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "BENCH_cache.json"
        append_record(path, record())
        assert path.is_file()


class TestRegressionCheck:
    def test_empty_history_has_no_baseline(self):
        verdict = check_regression(empty_history())
        assert verdict["status"] == "no-baseline"
        assert verdict["latest_speedup"] is None

    def test_first_record_has_no_baseline(self, tmp_path):
        history = empty_history()
        history["records"] = [record(speedup=10.0)]
        verdict = check_regression(history)
        assert verdict["status"] == "no-baseline"
        assert verdict["latest_speedup"] == 10.0
        assert verdict["baseline_records"] == 0

    def test_steady_speedup_is_ok(self):
        history = empty_history()
        history["records"] = [
            record(speedup=10.0),
            record(speedup=9.0),
            record(speedup=9.5),
        ]
        verdict = check_regression(history)
        assert verdict["status"] == "ok"
        assert verdict["baseline_speedup"] == pytest.approx(9.5)
        assert verdict["baseline_records"] == 2

    def test_collapsed_speedup_flags_regression(self):
        history = empty_history()
        history["records"] = [
            record(speedup=10.0),
            record(speedup=12.0),
            record(speedup=2.0),  # < 0.5 x median(10, 12)
        ]
        verdict = check_regression(history)
        assert verdict["status"] == "regression"
        assert verdict["baseline_speedup"] == pytest.approx(11.0)
        assert verdict["ratio"] == pytest.approx(2.0 / 11.0)

    def test_threshold_is_configurable(self):
        history = empty_history()
        history["records"] = [
            record(speedup=10.0),
            record(speedup=10.0),
            record(speedup=8.0),
        ]
        assert check_regression(history, threshold=0.5)["status"] == "ok"
        assert (
            check_regression(history, threshold=0.9)["status"] == "regression"
        )

    def test_single_prior_record_is_not_a_baseline(self):
        # min_records=2 by default: one predecessor is noise, not a
        # baseline (an environment-tag change restarts the class)
        history = empty_history()
        history["records"] = [record(speedup=10.0), record(speedup=1.0)]
        verdict = check_regression(history)
        assert verdict["status"] == "no-baseline"
        assert verdict["baseline_records"] == 1
        assert verdict["min_records"] == 2

    def test_min_records_is_configurable(self):
        history = empty_history()
        history["records"] = [record(speedup=10.0), record(speedup=1.0)]
        assert (
            check_regression(history, min_records=1)["status"] == "regression"
        )
        assert (
            check_regression(history, min_records=3)["status"] == "no-baseline"
        )

    def test_min_records_must_be_positive(self):
        with pytest.raises(CacheError):
            check_regression(empty_history(), min_records=0)

    def test_different_config_is_not_comparable(self):
        # a jobs=4 run must not be judged against jobs=1 baselines
        history = empty_history()
        history["records"] = [
            record(speedup=10.0, jobs=1),
            record(speedup=10.0, jobs=1),
            record(speedup=1.1, jobs=4),
        ]
        verdict = check_regression(history)
        assert verdict["status"] == "no-baseline"
        assert verdict["baseline_records"] == 0

    def test_different_environment_is_not_comparable(self):
        history = empty_history()
        history["records"] = [
            record(speedup=10.0, environment="py3.10-numpy1-scipy1"),
            record(speedup=1.0, environment="py3.11-numpy2-scipy1"),
        ]
        assert check_regression(history)["status"] == "no-baseline"

    def test_records_without_speedup_ignored(self):
        history = empty_history()
        broken = record()
        broken["speedup"] = None  # warm pass took 0s on a broken clock
        history["records"] = [
            record(speedup=10.0),
            record(speedup=10.0),
            broken,
            record(speedup=9.0),
        ]
        verdict = check_regression(history)
        assert verdict["status"] == "ok"
        assert verdict["baseline_records"] == 2


class TestRenderTrend:
    def test_empty_history_renders_placeholder(self):
        assert "no records" in render_trend(empty_history())

    def test_rows_in_chronological_order(self):
        history = empty_history()
        history["records"] = [
            record(speedup=10.0, revision="older12"),
            record(speedup=11.0, revision="newer34"),
        ]
        text = render_trend(history)
        assert text.index("older12") < text.index("newer34")
        assert "10.0x" in text and "11.0x" in text

    def test_non_identical_record_flagged(self):
        history = empty_history()
        bad = record()
        bad["bit_identical"] = False
        history["records"] = [bad]
        assert "NO" in render_trend(history)

    def test_sim_history_gets_sim_columns(self):
        history = empty_history(benchmark="sim-scalar-vs-chunked")
        history["records"] = [
            {
                "benchmark": "sim-scalar-vs-chunked",
                "quick": True,
                "scalar_wall_time_s": 2.0,
                "chunked_wall_time_s": 0.4,
                "speedup": 5.0,
                "bit_identical": True,
                "git_revision": "sim1234",
            }
        ]
        text = render_trend(history)
        assert "sim-scalar-vs-chunked" in text
        assert "scalar(s)" in text and "chunked(s)" in text
        assert "5.0x" in text and "sim1234" in text


class TestBenchmarkParameter:
    def test_empty_history_takes_benchmark_name(self):
        doc = empty_history(benchmark="sim-scalar-vs-chunked")
        assert doc["benchmark"] == "sim-scalar-vs-chunked"
        assert empty_history()["benchmark"] == "cache-cold-vs-warm"

    def test_missing_file_adopts_requested_benchmark(self, tmp_path):
        doc = load_history(
            tmp_path / "BENCH_sim.json", benchmark="sim-scalar-vs-chunked"
        )
        assert doc["benchmark"] == "sim-scalar-vs-chunked"

    def test_append_record_seeds_benchmark(self, tmp_path):
        path = tmp_path / "BENCH_sim.json"
        doc = append_record(
            path,
            {"speedup": 5.0, "quick": True},
            benchmark="sim-scalar-vs-chunked",
        )
        assert doc["benchmark"] == "sim-scalar-vs-chunked"
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["benchmark"] == "sim-scalar-vs-chunked"
