"""Per-entry advisory locking: naming, exclusion, the reap protocol."""

import os
from pathlib import Path

from repro.cache.lock import (
    LOCK_PREFIX,
    entry_lock,
    lock_path_for,
    locking_available,
    try_reap_lock,
)


def entry(tmp_path) -> Path:
    return tmp_path / "ab" / "cd" / ("a" * 64 + ".json")


class TestLockPaths:
    def test_lock_sits_next_to_entry(self, tmp_path):
        path = lock_path_for(entry(tmp_path))
        assert path.parent == entry(tmp_path).parent
        assert path.name == f"{LOCK_PREFIX}{'a' * 64}.json"

    def test_hidden_from_entry_globs(self, tmp_path):
        with entry_lock(entry(tmp_path)):
            pass
        visible = [p.name for p in tmp_path.glob("*/*/*") if not p.name.startswith(".")]
        assert visible == []


class TestEntryLock:
    def test_creates_shard_dirs_and_lock_file(self, tmp_path):
        with entry_lock(entry(tmp_path)):
            assert lock_path_for(entry(tmp_path)).exists()

    def test_holder_never_unlinks(self, tmp_path):
        with entry_lock(entry(tmp_path)):
            pass
        assert lock_path_for(entry(tmp_path)).exists()

    def test_reentrant_after_release(self, tmp_path):
        with entry_lock(entry(tmp_path)):
            pass
        with entry_lock(entry(tmp_path)):
            pass  # second acquisition of the surviving lock file


class TestReapProtocol:
    def test_reap_unheld_lock(self, tmp_path):
        lock_path = lock_path_for(entry(tmp_path))
        with entry_lock(entry(tmp_path)):
            pass
        assert try_reap_lock(lock_path) is True
        assert not lock_path.exists()

    def test_reap_missing_lock_is_false(self, tmp_path):
        assert try_reap_lock(lock_path_for(entry(tmp_path))) is False

    def test_held_lock_not_reaped(self, tmp_path):
        if not locking_available():  # pragma: no cover - POSIX-only guard
            return
        import fcntl

        lock_path = lock_path_for(entry(tmp_path))
        lock_path.parent.mkdir(parents=True)
        # A second file description on the same inode: flock exclusion
        # applies between separate os.open() descriptions even within
        # one process, so this models a concurrent holder exactly.
        fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            assert try_reap_lock(lock_path) is False
            assert lock_path.exists()
        finally:
            os.close(fd)
        assert try_reap_lock(lock_path) is True

    def test_acquire_survives_concurrent_reap(self, tmp_path):
        # Reap between acquisitions: the next entry_lock must recreate
        # and re-verify the file rather than locking a dead inode.
        lock_path = lock_path_for(entry(tmp_path))
        with entry_lock(entry(tmp_path)):
            pass
        assert try_reap_lock(lock_path)
        with entry_lock(entry(tmp_path)):
            assert lock_path.exists()
