"""Unit tests for the keyed-LRU memoizer and the memoized kernels."""

import threading

import numpy as np
import pytest

from repro.cache.memo import MemoInfo, distribution_key, memoized


class TestMemoized:
    def test_hit_and_miss_counters(self):
        calls = []

        @memoized(maxsize=4)
        def f(x):
            calls.append(x)
            return x * 2

        assert f(1) == 2 and f(1) == 2 and f(2) == 4
        assert calls == [1, 2]
        info = f.cache_info()
        assert info == MemoInfo(hits=1, misses=2, maxsize=4, currsize=2)

    def test_lru_eviction_order(self):
        @memoized(maxsize=2)
        def f(x):
            return object()

        a, b = f(1), f(2)
        assert f(1) is a  # refresh 1 -> 2 is now least-recent
        f(3)  # evicts 2
        assert f(1) is a
        assert f(2) is not b

    def test_cache_clear_resets(self):
        @memoized(maxsize=2)
        def f(x):
            return x

        f(1), f(1)
        f.cache_clear()
        assert f.cache_info() == MemoInfo(0, 0, 2, 0)

    def test_explicit_key_unifies_spellings(self):
        calls = []

        def key(a, b=0):
            return (a, b)

        @memoized(maxsize=4, key=key)
        def f(a, b=0):
            calls.append((a, b))
            return a + b

        assert f(1) == f(1, 0) == f(1, b=0) == f(a=1) == 1
        assert len(calls) == 1

    def test_exceptions_not_cached(self):
        calls = []

        @memoized(maxsize=4)
        def f(x):
            calls.append(x)
            raise ValueError("boom")

        for _ in range(2):
            with pytest.raises(ValueError):
                f(1)
        assert len(calls) == 2

    def test_concurrent_miss_window_duplicates_compute(self):
        # memoized() computes OUTSIDE the lock on purpose (holding it
        # through a slow kernel would serialize every caller), so two
        # threads that both miss the same key each run the function once.
        # This pins that documented window: duplicate compute, double
        # miss count, but a single consistent entry afterwards.
        in_the_window = threading.Barrier(2)
        calls = []

        @memoized(maxsize=4)
        def f(x):
            in_the_window.wait(timeout=10)  # both threads missed
            calls.append(x)
            return x * 2

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(f(7)))
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [14, 14]
        assert len(calls) == 2  # the window: both threads computed
        info = f.cache_info()
        assert info.misses == 2 and info.hits == 0 and info.currsize == 1
        assert f(7) == 14  # later callers hit the surviving entry
        assert f.cache_info().hits == 1
        assert len(calls) == 2

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            memoized(maxsize=0)

    def test_wrapped_preserved(self):
        @memoized()
        def f(x):
            """doc"""
            return x

        assert f.__name__ == "f" and f.__doc__ == "doc"
        assert f.__wrapped__(3) == 3


class TestDistributionKey:
    def test_same_name_different_support_distinguished(self):
        from repro.profiles.distributions import Empirical

        a = Empirical([1, 2], name="same")
        b = Empirical([1, 4], name="same")
        assert distribution_key(a) != distribution_key(b)

    def test_equal_distributions_share_key(self):
        from repro.profiles.distributions import PointMass

        assert distribution_key(PointMass(8)) == distribution_key(PointMass(8))
        assert distribution_key(PointMass(8)) != distribution_key(PointMass(16))

    def test_key_is_hashable(self):
        from repro.profiles.distributions import UniformPowers

        hash(distribution_key(UniformPowers(4, 1, 5)))


class TestMemoizedKernels:
    def test_solve_recurrence_returns_shared_solution(self):
        from repro.algorithms.library import MM_SCAN
        from repro.analysis.recurrence import solve_recurrence
        from repro.profiles.distributions import PointMass

        solve_recurrence.cache_clear()
        first = solve_recurrence(MM_SCAN, 64, PointMass(16))
        second = solve_recurrence(MM_SCAN, 64, PointMass(16), scan_dp=True)
        assert second is first
        info = solve_recurrence.cache_info()
        assert info.hits >= 1 and info.misses >= 1

    def test_solve_recurrence_distinguishes_scan_dp(self):
        from repro.algorithms.library import MM_SCAN
        from repro.analysis.recurrence import solve_recurrence
        from repro.profiles.distributions import PointMass

        exact = solve_recurrence(MM_SCAN, 64, PointMass(6))
        wald = solve_recurrence(MM_SCAN, 64, PointMass(6), scan_dp=False)
        assert exact is not wald

    def test_worst_case_profile_shared_instance(self):
        from repro.profiles.worst_case import worst_case_profile

        worst_case_profile.cache_clear()
        first = worst_case_profile(8, 4, 256)
        second = worst_case_profile(8, 4, 256, base_size=1)
        assert second is first
        assert np.array_equal(first.boxes, second.boxes)
        assert worst_case_profile.cache_info().hits >= 1

    def test_worst_case_profile_bad_params_still_raise(self):
        from repro.errors import ProfileError
        from repro.profiles.worst_case import worst_case_profile

        with pytest.raises(ProfileError):
            worst_case_profile(8, 4, 10)
