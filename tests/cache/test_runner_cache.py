"""Integration tests: the cache wired through run_one/ExperimentRunner,
store verification, and the cold-vs-warm benchmark."""

import pytest

from repro.cache.store import Cache, cache_key_for
from repro.errors import ExperimentError
from repro.runtime.runner import ExperimentRunner, run_one


class TestRunOneCache:
    def test_off_never_touches_store(self, tmp_path):
        store = Cache(tmp_path / "store")
        artifact = run_one("fig1", cache="off", cache_dir=str(store.root))
        assert artifact.cache_hit is None
        assert store.stats().entries == 0

    def test_auto_miss_then_hit(self, tmp_path):
        root = str(tmp_path / "store")
        cold = run_one("fig1", cache="auto", cache_dir=root)
        assert cold.cache_hit is False
        assert cold.wall_time_s > 0
        warm = run_one("fig1", cache="auto", cache_dir=root)
        assert warm.cache_hit is True
        assert warm.wall_time_s == 0.0
        assert warm.saved_wall_time_s == pytest.approx(cold.wall_time_s)
        assert (
            warm.without_timing().to_json() == cold.without_timing().to_json()
        )
        assert warm.render() == cold.render()

    def test_different_seed_misses(self, tmp_path):
        root = str(tmp_path / "store")
        run_one("fig1", seed=0, cache="auto", cache_dir=root)
        other = run_one("fig1", seed=1, cache="auto", cache_dir=root)
        assert other.cache_hit is False

    def test_refresh_recomputes_and_overwrites(self, tmp_path):
        root = str(tmp_path / "store")
        run_one("fig1", cache="auto", cache_dir=root)
        refreshed = run_one("fig1", cache="refresh", cache_dir=root)
        assert refreshed.cache_hit is False
        assert refreshed.wall_time_s > 0
        store = Cache(root)
        entry = store.get(cache_key_for("fig1", True, 0))
        assert entry.stored_wall_time_s == pytest.approx(
            refreshed.wall_time_s
        )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ExperimentError):
            run_one("fig1", cache="sometimes")
        with pytest.raises(ExperimentError):
            ExperimentRunner(cache="sometimes")


class TestRunnerCache:
    IDS = ["fig1", "mmcount"]

    def test_parallel_warm_run_bit_identical(self, tmp_path):
        root = str(tmp_path / "store")
        cold = ExperimentRunner(jobs=1, cache="auto", cache_dir=root).run(
            self.IDS
        )
        warm = ExperimentRunner(jobs=2, cache="auto", cache_dir=root).run(
            self.IDS
        )
        assert all(a.cache_hit is False for a in cold)
        assert all(a.cache_hit is True for a in warm)
        for c, w in zip(cold, warm):
            assert w.without_timing().to_json() == c.without_timing().to_json()

    def test_cold_parallel_run_populates_store(self, tmp_path):
        root = str(tmp_path / "store")
        ExperimentRunner(jobs=2, cache="auto", cache_dir=root).run(self.IDS)
        assert Cache(root).stats().entries == len(self.IDS)


class TestVerifyStore:
    def test_verify_ok_at_serial_and_parallel(self, tmp_path):
        from repro.cache.verify import verify_store

        root = str(tmp_path / "store")
        ExperimentRunner(cache="auto", cache_dir=root).run(["fig1", "mmcount"])
        store = Cache(root)
        for jobs in (1, 2):
            report = verify_store(store, sample=None, seed=0, jobs=jobs)
            assert report.ok
            assert report.checked == 2
            assert {r.status for r in report.records} == {"ok"}

    def test_verify_flags_mismatch(self, tmp_path):
        from repro.cache.verify import verify_store

        root = str(tmp_path / "store")
        run_one("fig1", cache="auto", cache_dir=root)
        store = Cache(root)
        key = cache_key_for("fig1", True, 0)
        entry = store.get(key)
        import dataclasses

        forged = dataclasses.replace(entry.artifact, verdict="MISMATCH")
        store.put(key, forged)
        report = verify_store(store, sample=None, seed=0)
        assert not report.ok
        assert report.mismatches == 1

    def test_verify_reports_stale_without_rerunning(self, tmp_path):
        from repro.cache.verify import verify_store

        root = str(tmp_path / "store")
        run_one("fig1", cache="auto", cache_dir=root)
        store = Cache(root)
        key = cache_key_for("fig1", True, 0)
        entry = store.get(key)
        import dataclasses

        stale_key = dataclasses.replace(key, fingerprint="0" * 64)
        store.put(stale_key, entry.artifact)
        report = verify_store(store, sample=None, seed=0)
        assert report.ok  # stale entries are reported, not failures
        assert report.stale == 1
        assert report.checked == 1

    def test_sampling_is_deterministic(self, tmp_path):
        from repro.cache.verify import verify_store

        root = str(tmp_path / "store")
        ExperimentRunner(cache="auto", cache_dir=root).run(
            ["fig1", "mmcount", "lemma1"]
        )
        store = Cache(root)
        first = verify_store(store, sample=2, seed=7)
        second = verify_store(store, sample=2, seed=7)
        assert [r.experiment_id for r in first.records] == [
            r.experiment_id for r in second.records
        ]
        assert first.checked == 2


class TestCacheBench:
    def test_cold_vs_warm_payload(self, tmp_path):
        from repro.cache.bench import BENCH_SCHEMA_VERSION, run_cache_bench

        payload = run_cache_bench(
            quick=True, seed=0, cache_dir=str(tmp_path / "store"), ids=["fig1"]
        )
        assert payload["bench_schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["experiments"] == ["fig1"]
        assert payload["warm_hits"] == 1
        assert payload["bit_identical"] is True
        assert payload["cold_wall_time_s"] > payload["warm_wall_time_s"]
        assert payload["speedup"] > 1

    def test_zero_experiments_is_loud(self, tmp_path):
        # all() over zero cold/warm pairs would report bit_identical=True
        # vacuously; the bench must refuse to emit that as evidence
        from repro.cache.bench import run_cache_bench
        from repro.errors import CacheError

        with pytest.raises(CacheError):
            run_cache_bench(
                quick=True,
                seed=0,
                cache_dir=str(tmp_path / "store"),
                ids=[],
            )


class TestManifestCacheAccounting:
    def test_manifest_records_hits_and_saved_time(self, tmp_path):
        from repro.runtime.manifest import RunManifest

        root = str(tmp_path / "store")
        runner = ExperimentRunner(cache="auto", cache_dir=root)
        cold = runner.run(["fig1"])
        warm = runner.run(["fig1"])
        manifest = RunManifest.build(
            warm, seed=0, quick=True, jobs=1, total_wall_time_s=0.01
        )
        assert manifest.cache_hits == 1
        assert manifest.entries[0].cache_hit is True
        assert manifest.saved_wall_time_s == pytest.approx(
            cold[0].wall_time_s
        )
        assert manifest.serial_equivalent_wall_time_s == pytest.approx(
            cold[0].wall_time_s
        )
        assert manifest.cache_speedup == float("inf")
