"""The sharded ``ab/cd/<digest>`` layout and legacy-store migration."""

import json
from pathlib import Path

from repro.cache.gc import GCBudget, collect, sidecar_path
from repro.cache.store import Cache, CacheKey
from repro.runtime.artifact import RunArtifact


def make_artifact(**overrides) -> RunArtifact:
    base = dict(
        experiment_id="x",
        title="T",
        claim="C",
        metrics={"reproduced": True},
        verdict="REPRODUCED",
        seed=0,
        quick=True,
        wall_time_s=0.25,
        counters={"sim.runs": 1},
        repro_version="1.0.0",
        git_revision="abc1234",
    )
    base.update(overrides)
    return RunArtifact(**base)


def make_key(**overrides) -> CacheKey:
    base = dict(experiment_id="x", quick=True, seed=0, fingerprint="f" * 64)
    base.update(overrides)
    return CacheKey(**base)


def demote_to_one_level(store: Cache, path: Path) -> Path:
    """Relocate a sharded entry to the legacy one-level layout."""
    legacy = path.parent.parent / path.name
    path.rename(legacy)
    meta = sidecar_path(path)
    if meta.exists():
        meta.rename(sidecar_path(legacy))
    try:
        path.parent.rmdir()
    except OSError:
        pass
    return legacy


def demote_to_flat(store: Cache, path: Path) -> Path:
    """Relocate a sharded entry to the legacy flat layout."""
    flat = store.root / path.name
    path.rename(flat)
    meta = sidecar_path(path)
    if meta.exists():
        meta.rename(sidecar_path(flat))
    return flat


class TestShardedLayout:
    def test_put_lands_two_levels_deep(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        path = store.put(key, make_artifact())
        digest = key.digest
        assert path == store.root / digest[:2] / digest[2:4] / f"{digest}.json"
        assert path.is_file()

    def test_canonical_and_legacy_paths_disjoint(self, tmp_path):
        store = Cache(tmp_path / "store")
        digest = "ab" + "cd" + "e" * 60
        canonical = store.canonical_path(digest)
        assert all(p != canonical for p in store.legacy_paths(digest))


class TestLazyMigration:
    def test_get_migrates_one_level_entry(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        canonical = store.put(key, make_artifact())
        legacy = demote_to_one_level(store, canonical)
        assert not canonical.exists() and legacy.exists()
        entry = store.get(key)
        assert entry is not None and entry.path == canonical
        assert canonical.exists() and not legacy.exists()
        # the sidecar moved with its entry
        assert sidecar_path(canonical).exists()
        assert not sidecar_path(legacy).exists()

    def test_get_migrates_flat_entry(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        canonical = store.put(key, make_artifact())
        flat = demote_to_flat(store, canonical)
        entry = store.get(key)
        assert entry is not None and canonical.exists() and not flat.exists()

    def test_put_removes_legacy_duplicate(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        legacy = demote_to_one_level(store, store.put(key, make_artifact()))
        store.put(key, make_artifact(wall_time_s=9.0))
        assert not legacy.exists()
        assert store.get(key).stored_wall_time_s == 9.0

    def test_sharded_copy_wins_over_stale_legacy(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        # a stale legacy duplicate next to a live sharded entry
        legacy = demote_to_one_level(store, store.put(key, make_artifact(wall_time_s=1.0)))
        store.put(key, make_artifact(wall_time_s=2.0))
        legacy.write_text(
            json.dumps({"cache_entry_version": 0}), encoding="utf-8"
        )
        assert store.get(key).stored_wall_time_s == 2.0
        assert store.stats().entries == 1  # never double-counted


class TestBulkMigration:
    def test_migrate_moves_everything(self, tmp_path):
        store = Cache(tmp_path / "store")
        legacies = []
        for seed in range(3):
            path = store.put(make_key(seed=seed), make_artifact(seed=seed))
            if seed % 2:
                legacies.append(demote_to_flat(store, path))
            else:
                legacies.append(demote_to_one_level(store, path))
        assert store.stats().legacy_entries == 3
        assert store.migrate() == 3
        assert store.stats().legacy_entries == 0
        assert store.stats().entries == 3
        assert all(not legacy.exists() for legacy in legacies)

    def test_migrate_is_idempotent(self, tmp_path):
        store = Cache(tmp_path / "store")
        demote_to_flat(store, store.put(make_key(), make_artifact()))
        assert store.migrate() == 1
        assert store.migrate() == 0

    def test_cli_cache_migrate(self, tmp_path, capsys):
        from repro.cli import main

        store = Cache(tmp_path / "store")
        demote_to_one_level(store, store.put(make_key(), make_artifact()))
        rc = main(["cache", "migrate", "--cache-dir", str(store.root)])
        assert rc == 0
        assert "migrated 1 entry" in capsys.readouterr().out
        assert store.stats().legacy_entries == 0


class TestLegacyMaintenance:
    def test_iter_entries_sees_both_layouts(self, tmp_path):
        store = Cache(tmp_path / "store")
        demote_to_flat(store, store.put(make_key(seed=0), make_artifact(seed=0)))
        store.put(make_key(seed=1), make_artifact(seed=1))
        assert sum(1 for _ in store.iter_entries()) == 2

    def test_gc_evicts_legacy_entries(self, tmp_path):
        store = Cache(tmp_path / "store")
        demote_to_flat(store, store.put(make_key(), make_artifact()))
        report = collect(store, GCBudget(max_bytes=None, max_entries=0))
        assert report.evicted_entries == 1
        assert store.stats().entries == 0

    def test_clear_sweeps_legacy_entries(self, tmp_path):
        store = Cache(tmp_path / "store")
        demote_to_one_level(store, store.put(make_key(seed=0), make_artifact()))
        store.put(make_key(seed=1), make_artifact())
        assert store.clear() == 2
        assert store.stats().entries == 0


class TestReadOnlyStore:
    """``get`` on a store it cannot write to: misses and in-place
    serves, never errors — a shared read-only CI cache must degrade to
    recomputation, not take the run down (the documented contract).

    Write denial is simulated by making the entry lock unacquirable
    (acquiring it creates the lock file, the first write any mutation
    path needs), which works regardless of the uid tests run under —
    root would bypass a chmod-based setup entirely.
    """

    def _lock_out_writes(self, monkeypatch):
        from contextlib import contextmanager

        @contextmanager
        def denied(entry_path):
            raise PermissionError(13, "Read-only file system", str(entry_path))
            yield  # pragma: no cover

        monkeypatch.setattr("repro.cache.store.entry_lock", denied)

    def test_legacy_entry_served_in_place(self, tmp_path, monkeypatch):
        store = Cache(tmp_path / "store")
        key = make_key()
        legacy = demote_to_flat(store, store.put(key, make_artifact()))
        self._lock_out_writes(monkeypatch)
        entry = store.get(key)
        assert entry is not None
        assert entry.path == legacy  # migration impossible: read as-is
        assert legacy.exists()
        assert not store.canonical_path(key.digest).exists()

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path, monkeypatch):
        store = Cache(tmp_path / "store")
        key = make_key()
        path = store.put(key, make_artifact())
        path.write_text("{ not json", encoding="utf-8")
        self._lock_out_writes(monkeypatch)
        assert store.get(key) is None
        assert path.exists()  # discard impossible: left in place

    def test_mismatched_entry_is_a_miss_not_an_error(
        self, tmp_path, monkeypatch
    ):
        store = Cache(tmp_path / "store")
        key = make_key()
        path = store.put(key, make_artifact())
        other = store.canonical_path(make_key(seed=9).digest)
        other.parent.mkdir(parents=True, exist_ok=True)
        path.rename(other)  # entry now lives under the wrong digest
        self._lock_out_writes(monkeypatch)
        assert store.get(make_key(seed=9)) is None
