"""Unit tests for the content-addressed artifact store."""

import json

import pytest

from repro.cache.store import (
    CACHE_ENTRY_VERSION,
    Cache,
    CacheKey,
    cache_key_for,
    default_cache_dir,
    environment_tag,
)
from repro.errors import ExperimentError
from repro.runtime.artifact import RunArtifact


def make_artifact(**overrides) -> RunArtifact:
    base = dict(
        experiment_id="x",
        title="T",
        claim="C",
        metrics={"reproduced": True},
        verdict="REPRODUCED",
        seed=0,
        quick=True,
        wall_time_s=0.25,
        counters={"sim.runs": 1},
        repro_version="1.0.0",
        git_revision="abc1234",
    )
    base.update(overrides)
    return RunArtifact(**base)


def make_key(**overrides) -> CacheKey:
    base = dict(experiment_id="x", quick=True, seed=0, fingerprint="f" * 64)
    base.update(overrides)
    return CacheKey(**base)


class TestCacheKey:
    def test_digest_is_stable(self):
        assert make_key().digest == make_key().digest

    @pytest.mark.parametrize(
        "field, value",
        [
            ("experiment_id", "y"),
            ("quick", False),
            ("seed", 1),
            ("fingerprint", "e" * 64),
            ("schema_version", 99),
            ("environment", "py0.0-numpy0-scipy0"),
        ],
    )
    def test_any_field_changes_digest(self, field, value):
        assert make_key(**{field: value}).digest != make_key().digest

    def test_environment_defaults_to_current(self):
        assert make_key().environment == environment_tag()

    def test_cache_key_for_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            cache_key_for("nope", True, 0)


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "here"))
        assert default_cache_dir() == tmp_path / "here"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"


class TestPutGet:
    def test_roundtrip(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        path = store.put(key, make_artifact())
        assert path.is_file()
        entry = store.get(key)
        assert entry is not None
        assert entry.key == key
        assert entry.artifact == make_artifact()
        assert entry.stored_wall_time_s == pytest.approx(0.25)

    def test_miss_returns_none(self, tmp_path):
        assert Cache(tmp_path / "store").get(make_key()) is None

    def test_put_strips_cache_stamp(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        stamped = make_artifact(cache_hit=True, saved_wall_time_s=9.0)
        store.put(key, stamped)
        entry = store.get(key)
        assert entry.artifact.cache_hit is None
        assert entry.artifact.saved_wall_time_s is None
        assert entry.artifact.wall_time_s == pytest.approx(0.25)

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        path = store.put(key, make_artifact())
        path.write_text("{not json", encoding="utf-8")
        assert store.get(key) is None
        # a dead entry must be unlinked, not left uncounted and
        # unevictable (it can never hit again)
        assert not path.exists()

    def test_missing_entry_is_silent_miss(self, tmp_path):
        # plain OSError (nothing there) stays a quiet miss — only
        # *corrupt* files are discarded
        store = Cache(tmp_path / "store")
        assert store.get(make_key()) is None
        assert not store.root.exists() or not list(store.iter_entry_paths())

    def test_wrong_entry_version_discarded(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        path = store.put(key, make_artifact())
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["cache_entry_version"] = CACHE_ENTRY_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get(key) is None
        assert not path.exists()

    def test_last_writer_wins(self, tmp_path):
        store = Cache(tmp_path / "store")
        key = make_key()
        store.put(key, make_artifact(wall_time_s=1.0))
        store.put(key, make_artifact(wall_time_s=2.0))
        assert store.get(key).stored_wall_time_s == pytest.approx(2.0)


class TestPutCleanup:
    def test_failed_serialization_leaves_no_tmp_debris(
        self, tmp_path, monkeypatch
    ):
        # json.dump raising a non-OSError (a TypeError on an
        # unserializable value) must still unlink the mkstemp file —
        # the old `except OSError` cleanup missed exactly this case
        store = Cache(tmp_path / "store")

        def boom(*args, **kwargs):
            raise TypeError("not serializable")

        monkeypatch.setattr("repro.cache.store.json.dump", boom)
        with pytest.raises(TypeError):
            store.put(make_key(), make_artifact())
        # only the (persistent, GC-reaped) lock file may remain
        leftovers = [
            p for p in store.root.rglob("*")
            if p.is_file() and not p.name.startswith(".lock-")
        ]
        assert leftovers == []

    def test_os_failure_raises_cache_error_and_cleans_up(
        self, tmp_path, monkeypatch
    ):
        from repro.errors import CacheError

        store = Cache(tmp_path / "store")

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.cache.store.os.replace", boom)
        with pytest.raises(CacheError):
            store.put(make_key(), make_artifact())
        monkeypatch.undo()
        leftovers = [
            p for p in store.root.rglob("*")
            if p.is_file() and not p.name.startswith(".lock-")
        ]
        assert leftovers == []


class TestMaintenance:
    def test_stats_and_clear(self, tmp_path):
        store = Cache(tmp_path / "store")
        store.put(make_key(seed=0), make_artifact(wall_time_s=1.0))
        store.put(make_key(seed=1), make_artifact(wall_time_s=2.0))
        store.put(
            make_key(experiment_id="y"), make_artifact(experiment_id="y")
        )
        stats = store.stats()
        assert stats.entries == 3
        assert stats.by_experiment == {"x": 2, "y": 1}
        assert stats.total_bytes > 0
        assert stats.stored_wall_time_s == pytest.approx(3.25)
        assert store.clear() == 3
        assert store.stats().entries == 0

    def test_iter_entries_in_digest_order(self, tmp_path):
        store = Cache(tmp_path / "store")
        for seed in range(4):
            store.put(make_key(seed=seed), make_artifact(seed=seed))
        digests = [e.key.digest for e in store.iter_entries()]
        assert digests == sorted(digests)

    def test_stats_on_missing_root(self, tmp_path):
        stats = Cache(tmp_path / "ghost").stats()
        assert stats.entries == 0 and stats.total_bytes == 0
        assert stats.tmp_files == 0 and stats.gc is None
        assert Cache(tmp_path / "ghost").clear() == 0

    def test_clear_sweeps_sidecars_and_debris(self, tmp_path):
        store = Cache(tmp_path / "store")
        path = store.put(make_key(), make_artifact())
        (path.parent / ".tmp-orphan.json").write_text("x", encoding="utf-8")
        (store.root / ".tmp-root.json").write_text("x", encoding="utf-8")
        assert store.clear() == 1  # counts entries, not bookkeeping files
        leftovers = [
            p for p in store.root.rglob("*")
            if p.name.startswith((".tmp-", ".meta-"))
        ]
        assert leftovers == []
        assert store.stats().entries == 0
        assert store.stats().tmp_files == 0
