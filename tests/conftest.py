"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.library import MM_INPLACE, MM_SCAN, STRASSEN
from repro.algorithms.spec import RegularSpec


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(tmp_path, monkeypatch):
    """Point the artifact store at a per-test directory so tests never
    read or pollute the developer's real cache (~/.cache/repro).  The
    env var is inherited by ProcessPoolExecutor workers, so parallel
    runner tests stay isolated too."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifact-cache"))


@pytest.fixture
def rng():
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def mm_scan():
    return MM_SCAN


@pytest.fixture
def mm_inplace():
    return MM_INPLACE


@pytest.fixture
def strassen():
    return STRASSEN


@pytest.fixture
def small_spec():
    """A small (3, 2, 1) spec: deep recursion at tiny sizes."""
    return RegularSpec(3, 2, 1.0, name="small-321")
