"""Deep-analysis fixtures: one seeded-nondeterminism fixture per taint
source proving detection (with the full call chain to the experiment
entry), one clean fixture per source proving no false positive, plus
effect inference, suppression interplay, and the CLI surface.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main
from repro.devtools.analyze import (
    EFFECT_RULES,
    TAINT_RULES,
    analyze_paths,
    render_dot,
    render_json,
)


def write(path, source: str) -> None:
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def make_tree(tmp_path, helper_source: str):
    """A synthetic experiment package whose ``run`` reaches the helper
    under test through one intermediate call."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    write(pkg / "__init__.py", "")
    write(
        pkg / "exp_probe.py",
        """
        from pkg.middle import middle

        EXPERIMENT_ID = "probe"

        def run(quick=True, seed=0):
            return middle(seed)
        """,
    )
    write(
        pkg / "middle.py",
        """
        from pkg.helpers import leaf

        def middle(x):
            return leaf(x)
        """,
    )
    write(pkg / "helpers.py", helper_source)
    return pkg


def analyze(pkg):
    return analyze_paths([str(pkg)])


FULL_CHAIN = (
    "pkg.exp_probe.run",
    "pkg.middle.middle",
    "pkg.helpers.leaf",
)

#: (rule, tainted helper, sanctioned near-miss helper)
TAINT_FIXTURES = [
    (
        "nondet-wallclock",
        """
        import time

        def leaf(x):
            return time.perf_counter() + x
        """,
        """
        import datetime

        def leaf(x):
            return datetime.timedelta(seconds=x).total_seconds()
        """,
    ),
    (
        "nondet-env",
        """
        import os

        def leaf(x):
            return len(os.environ.get("HOME", "")) + x
        """,
        """
        import os

        def leaf(x):
            return len(os.path.basename("a/b")) + x
        """,
    ),
    (
        "nondet-rng",
        """
        import numpy as np

        def leaf(x):
            return np.random.rand() + x
        """,
        """
        import numpy as np

        def leaf(x):
            rng = np.random.default_rng(x)
            return int(rng.integers(0, 10))
        """,
    ),
    (
        "nondet-set-order",
        """
        def leaf(x):
            return list({x, x + 1, x + 2})
        """,
        """
        def leaf(x):
            return sorted({x, x + 1, x + 2})
        """,
    ),
    (
        "nondet-id",
        """
        def leaf(x):
            return id(x) % 7
        """,
        """
        def leaf(x):
            return hash(x) % 7
        """,
    ),
    (
        "nondet-fs-order",
        """
        import os

        def leaf(x):
            return os.listdir(".")[:x]
        """,
        """
        import os

        def leaf(x):
            return sorted(os.listdir("."))[:x]
        """,
    ),
]


class TestTaintFixtures:
    @pytest.mark.parametrize(
        "rule,bad,clean", TAINT_FIXTURES, ids=[f[0] for f in TAINT_FIXTURES]
    )
    def test_bad_fixture_detected_with_full_chain(
        self, tmp_path, rule, bad, clean
    ):
        report = analyze(make_tree(tmp_path, bad))
        assert not report.ok
        assert [f.rule for f in report.findings] == [rule]
        assert report.findings[0].symbol == ("pkg.helpers", "leaf")
        (exp,) = report.experiments
        assert exp.experiment_id == "probe"
        chains = [c for c in exp.chains if c.rule == rule]
        assert chains, "taint did not propagate to the experiment"
        assert chains[0].chain == FULL_CHAIN
        # the chain is rendered into the diagnostic for humans
        (diag,) = report.diagnostics
        assert "poisons: probe" in diag.message
        assert " -> ".join(FULL_CHAIN) in diag.message

    @pytest.mark.parametrize(
        "rule,bad,clean", TAINT_FIXTURES, ids=[f[0] for f in TAINT_FIXTURES]
    )
    def test_clean_fixture_has_no_findings(self, tmp_path, rule, bad, clean):
        report = analyze(make_tree(tmp_path, clean))
        assert report.ok, [f.message for f in report.findings]
        assert report.findings == []
        (exp,) = report.experiments
        assert exp.chains == []

    def test_impurity_classification_covers_the_chain(self, tmp_path):
        report = analyze(make_tree(tmp_path, TAINT_FIXTURES[0][1]))
        for module, name in [
            ("pkg.helpers", "leaf"),
            ("pkg.middle", "middle"),
            ("pkg.exp_probe", "run"),
        ]:
            assert report.classifications[(module, name)] == "impure"


class TestEffectFixtures:
    def test_global_mutation_detected(self, tmp_path):
        report = analyze(
            make_tree(
                tmp_path,
                """
                _MEMO = {}

                def leaf(x):
                    _MEMO[x] = x
                    return _MEMO[x]
                """,
            )
        )
        assert [f.rule for f in report.findings] == ["effect-global-mutation"]
        (exp,) = report.experiments
        assert any(c.rule == "effect-global-mutation" for c in exp.chains)

    def test_local_mutation_is_clean(self, tmp_path):
        report = analyze(
            make_tree(
                tmp_path,
                """
                def leaf(x):
                    memo = {}
                    memo[x] = x
                    return memo[x]
                """,
            )
        )
        assert report.findings == []

    def test_mutable_default_detected(self, tmp_path):
        report = analyze(
            make_tree(
                tmp_path,
                """
                def leaf(x, acc=[]):
                    acc.append(x)
                    return len(acc)
                """,
            )
        )
        assert "effect-mutable-default" in {f.rule for f in report.findings}


class TestSuppressionInterplay:
    def test_waiver_stops_taint_at_the_source(self, tmp_path):
        pkg = make_tree(
            tmp_path,
            """
            import time

            def leaf(x):
                # Timing metadata only; never reaches returned values.
                return time.perf_counter() + x  # repro-lint: disable=nondet-wallclock
            """,
        )
        report = analyze(pkg)
        assert report.ok
        assert report.waived == 1
        (exp,) = report.experiments
        assert exp.chains == []

    def test_rule_tables_are_exported(self):
        assert "nondet-wallclock" in TAINT_RULES
        assert "effect-global-mutation" in EFFECT_RULES


class TestRenderers:
    def test_render_json_shape(self, tmp_path):
        report = analyze(make_tree(tmp_path, TAINT_FIXTURES[0][1]))
        payload = json.loads(render_json(report))
        assert payload["summary"]["findings"] == 1
        assert payload["symbols"]["pkg.helpers::leaf"] == "impure"
        (exp,) = payload["experiments"]
        assert exp["experiment_id"] == "probe"
        assert exp["tainted"][0]["chain"] == list(FULL_CHAIN)

    def test_render_dot_marks_impure_nodes(self, tmp_path):
        report = analyze(make_tree(tmp_path, TAINT_FIXTURES[0][1]))
        dot = render_dot(report)
        assert dot.startswith("digraph")
        assert "lightsalmon" in dot  # the impure chain is colored


class TestCliSurface:
    def test_analyze_bad_tree_exits_one(self, tmp_path, capsys):
        pkg = make_tree(tmp_path, TAINT_FIXTURES[0][1])
        assert main(["analyze", str(pkg)]) == 1
        captured = capsys.readouterr()
        assert "nondet-wallclock" in captured.out
        assert "poisons: probe" in captured.out

    def test_analyze_clean_tree_exits_zero(self, tmp_path):
        pkg = make_tree(tmp_path, TAINT_FIXTURES[0][2])
        assert main(["analyze", str(pkg)]) == 0

    def test_analyze_json_flag(self, tmp_path, capsys):
        pkg = make_tree(tmp_path, TAINT_FIXTURES[0][1])
        assert main(["analyze", str(pkg), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["impure"] >= 3

    def test_analyze_graph_flag_writes_dot(self, tmp_path):
        pkg = make_tree(tmp_path, TAINT_FIXTURES[0][2])
        dot_path = tmp_path / "graph.dot"
        assert main(["analyze", str(pkg), "--graph", str(dot_path)]) == 0
        assert dot_path.read_text(encoding="utf-8").startswith("digraph")

    def test_lint_deep_merges_analysis_findings(self, tmp_path, capsys):
        pkg = make_tree(tmp_path, TAINT_FIXTURES[0][1])
        assert main(["lint", str(pkg)]) == 0  # shallow lint is blind to it
        assert main(["lint", "--deep", str(pkg)]) == 1
        assert "nondet-wallclock" in capsys.readouterr().out


class TestSelfAnalysis:
    """The acceptance gate: the repository's own tree analyzes clean."""

    def test_src_is_clean(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2] / "src"
        report = analyze_paths([str(root)])
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)
        # the waiver count is the audit trail; pin that it stays honest
        assert report.waived > 0
