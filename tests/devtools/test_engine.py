"""Engine behaviour: suppressions, file walking, CLI wiring, and the
self-lint smoke test (the repo must be lint-clean)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools import (
    Diagnostic,
    all_rules,
    lint_paths,
    lint_source,
    scan_suppressions,
)
from repro.errors import LintError

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_LIB = "import numpy as np\n\ngen = np.random.default_rng(0)\n"


class TestSuppressions:
    def test_trailing_comment_silences_own_line(self):
        source = (
            "import numpy as np\n\n"
            "gen = np.random.default_rng(0)  # repro-lint: disable=rng-factory\n"
        )
        assert lint_source(source, path="benchmarks/x.py") == []

    def test_standalone_comment_silences_next_line(self):
        source = (
            "import numpy as np\n\n"
            "# repro-lint: disable=rng-factory\n"
            "gen = np.random.default_rng(0)\n"
        )
        assert lint_source(source, path="benchmarks/x.py") == []

    def test_file_level_disable(self):
        source = "# repro-lint: disable-file=rng-factory\n" + BAD_LIB
        assert lint_source(source, path="benchmarks/x.py") == []

    def test_disable_all_keyword(self):
        source = "# repro-lint: disable-file=all\n" + BAD_LIB
        assert lint_source(source, path="benchmarks/x.py") == []

    def test_unrelated_rule_does_not_silence(self):
        source = (
            "import numpy as np\n\n"
            "gen = np.random.default_rng(0)  # repro-lint: disable=units-mixing\n"
        )
        diags = lint_source(source, path="benchmarks/x.py")
        assert [d.rule for d in diags] == ["rng-factory"]

    def test_scan_parses_multiple_rules(self):
        index = scan_suppressions("x = 1  # repro-lint: disable=a-rule, b-rule\n")
        hit = Diagnostic("f.py", 1, 1, "a-rule", "m")
        miss = Diagnostic("f.py", 1, 1, "c-rule", "m")
        assert index.is_suppressed(hit)
        assert not index.is_suppressed(miss)


class TestEngine:
    def test_syntax_error_becomes_parse_error_diag(self):
        diags = lint_source("def broken(:\n", path="benchmarks/x.py")
        assert [d.rule for d in diags] == ["parse-error"]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(LintError, match="unknown lint rule"):
            lint_source("x = 1\n", rule_ids=["no-such-rule"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError, match="no such file"):
            lint_paths([tmp_path / "nowhere"])

    def test_directory_walk_skips_tests_by_default(self, tmp_path):
        pkg = tmp_path / "src" / "pkg"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(BAD_LIB + "__all__ = []\n")
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_bad.py").write_text(BAD_LIB)
        diags = lint_paths([tmp_path])
        assert {d.rule for d in diags} == {"rng-factory"}
        assert all("test_bad" not in d.path for d in diags)
        with_tests = lint_paths([tmp_path], include_tests=True)
        assert any("test_bad" in d.path for d in with_tests)

    def test_explicit_file_always_linted(self, tmp_path):
        bad = tmp_path / "script.py"
        bad.write_text(BAD_LIB)
        diags = lint_paths([bad])
        assert [d.rule for d in diags] == ["rng-factory"]

    def test_rule_registry_has_the_documented_rules(self):
        ids = {rule.rule_id for rule in all_rules()}
        assert {
            "rng-factory",
            "rng-coerce",
            "units-mixing",
            "float-equality",
            "frozen-dataclass",
            "mutable-default",
            "module-exports",
        } <= ids


class TestCli:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def main():\n    return 0\n")
        assert main(["lint", str(good)]) == 0
        assert capsys.readouterr().out == ""

    def test_lint_bad_file_exits_one_and_reports(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_LIB)
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "rng-factory" in out and "bad.py" in out

    def test_lint_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "rng-factory" in out and "module-exports" in out

    def test_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_LIB)
        assert main(["lint", "--rule", "units-mixing", str(bad)]) == 0


class TestSelfLint:
    """The acceptance gate: the repository's own trees are lint-clean."""

    @pytest.mark.parametrize("tree", ["src", "benchmarks", "examples"])
    def test_tree_is_clean(self, tree):
        root = REPO_ROOT / tree
        assert root.is_dir(), f"expected {root} to exist"
        diags = lint_paths([root])
        assert diags == [], "\n".join(d.format() for d in diags)
