"""The ``nocatchup-monotonicity`` lint rule: No-Catch-up entry points
must receive monotone nondecreasing start positions."""

from __future__ import annotations

from repro.devtools import lint_source


def lint(source: str):
    return lint_source(
        source, path="benchmarks/x.py", rule_ids=["nocatchup-monotonicity"]
    )


class TestFlagged:
    def test_reversed_starts(self):
        diags = lint(
            "finish_positions(spec, n, boxes, reversed(starts))\n"
        )
        assert [d.rule for d in diags] == ["nocatchup-monotonicity"]
        assert "reversed" in diags[0].message

    def test_descending_literal(self):
        diags = lint("check_no_catchup(spec, n, boxes, [30, 20, 10])\n")
        assert [d.rule for d in diags] == ["nocatchup-monotonicity"]
        assert "30" in diags[0].message and "20" in diags[0].message

    def test_keyword_argument_form(self):
        diags = lint(
            "finish_positions(spec, n, boxes, start_positions=(5, 1))\n"
        )
        assert len(diags) == 1

    def test_starts_keyword_on_check(self):
        diags = lint(
            "check_no_catchup(spec, n, boxes, starts=reversed(starts))\n"
        )
        assert len(diags) == 1

    def test_contract_helper_itself_is_checked(self):
        diags = lint("require_monotone_starts([3, 1])\n")
        assert len(diags) == 1

    def test_method_call_form(self):
        diags = lint("nc.finish_positions(spec, n, boxes, [9, 2])\n")
        assert len(diags) == 1


class TestClean:
    def test_sorted_call_passes(self):
        assert lint(
            "finish_positions(spec, n, boxes, sorted(starts))\n"
        ) == []

    def test_nondecreasing_literal_passes(self):
        assert lint(
            "check_no_catchup(spec, n, boxes, [0, 10, 10, 30])\n"
        ) == []

    def test_opaque_name_passes(self):
        # not statically readable: the runtime contract owns this case
        assert lint("finish_positions(spec, n, boxes, starts)\n") == []

    def test_non_constant_literal_passes(self):
        assert lint("finish_positions(spec, n, boxes, [a, b])\n") == []

    def test_missing_argument_passes(self):
        assert lint("check_no_catchup(spec, n, boxes)\n") == []

    def test_unrelated_call_passes(self):
        assert lint("other_function(spec, n, boxes, [9, 2])\n") == []
