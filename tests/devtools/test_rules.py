"""Per-rule fixtures: each rule fires on a minimal bad snippet and stays
quiet on the idiomatic good one."""

from __future__ import annotations

import textwrap

import pytest

from repro.devtools import lint_source

LIB = "src/repro/somepkg/mod.py"  # classified as library code
SCRIPT = "benchmarks/bench_fake.py"  # classified as script


def lint(source: str, path: str = LIB, rules=None):
    return lint_source(textwrap.dedent(source), path=path, rule_ids=rules)


def rule_ids(diags):
    return [d.rule for d in diags]


# ---------------------------------------------------------------- rng-factory
class TestRngFactory:
    def test_direct_default_rng_fires(self):
        diags = lint(
            """
            import numpy as np
            gen = np.random.default_rng(0)
            """,
            rules=["rng-factory"],
        )
        assert rule_ids(diags) == ["rng-factory"]
        assert diags[0].line == 3

    def test_stdlib_random_import_fires(self):
        diags = lint("import random\n", rules=["rng-factory"])
        assert rule_ids(diags) == ["rng-factory"]

    def test_from_random_import_fires(self):
        diags = lint("from random import shuffle\n", rules=["rng-factory"])
        assert rule_ids(diags) == ["rng-factory"]

    def test_from_numpy_random_import_fires(self):
        diags = lint(
            "from numpy.random import default_rng\n", rules=["rng-factory"]
        )
        assert rule_ids(diags) == ["rng-factory"]

    def test_numpy_alias_tracked(self):
        diags = lint(
            """
            import numpy
            x = numpy.random.standard_normal(3)
            """,
            rules=["rng-factory"],
        )
        assert rule_ids(diags) == ["rng-factory"]

    def test_good_as_generator_quiet(self):
        diags = lint(
            """
            from repro.util.rng import as_generator
            gen = as_generator(0)
            x = gen.random(3)
            """,
            rules=["rng-factory"],
        )
        assert diags == []

    def test_type_references_allowed(self):
        diags = lint(
            """
            import numpy as np

            def f(gen: np.random.Generator) -> np.random.Generator:
                assert isinstance(gen, np.random.Generator)
                return gen
            """,
            rules=["rng-factory"],
        )
        assert diags == []

    def test_rng_module_itself_exempt(self):
        diags = lint(
            """
            import numpy as np
            gen = np.random.default_rng(0)
            """,
            path="src/repro/util/rng.py",
            rules=["rng-factory"],
        )
        assert diags == []


# ---------------------------------------------------------------- rng-coerce
class TestRngCoerce:
    def test_drawing_from_raw_rng_param_fires(self):
        diags = lint(
            """
            def sample(k, rng=None):
                return rng.random(k)
            """,
            rules=["rng-coerce"],
        )
        assert rule_ids(diags) == ["rng-coerce"]

    def test_coerced_param_quiet(self):
        diags = lint(
            """
            from repro.util.rng import as_generator

            def sample(k, rng=None):
                gen = as_generator(rng)
                return gen.random(k)
            """,
            rules=["rng-coerce"],
        )
        assert diags == []

    def test_generator_annotated_param_quiet(self):
        diags = lint(
            """
            import numpy as np

            def sample(k, rng: np.random.Generator):
                return rng.random(k)
            """,
            rules=["rng-coerce"],
        )
        assert diags == []

    def test_no_arg_as_generator_fires(self):
        diags = lint(
            """
            from repro.util.rng import as_generator

            def sample(k):
                gen = as_generator()
                return gen.random(k)
            """,
            rules=["rng-coerce"],
        )
        assert rule_ids(diags) == ["rng-coerce"]


# -------------------------------------------------------------- units-mixing
class TestUnitsMixing:
    def test_adding_bytes_to_blocks_fires(self):
        diags = lint(
            "total = cache_bytes + cache_blocks\n", rules=["units-mixing"]
        )
        assert rule_ids(diags) == ["units-mixing"]

    def test_comparing_bytes_to_blocks_fires(self):
        diags = lint(
            "ok = size_B < capacity_blocks\n", rules=["units-mixing"]
        )
        assert rule_ids(diags) == ["units-mixing"]

    def test_explicit_conversion_quiet(self):
        diags = lint(
            """
            capacity_blocks = cache_bytes // block_size_bytes
            total_blocks = capacity_blocks + spare_blocks
            """,
            rules=["units-mixing"],
        )
        assert diags == []

    def test_attribute_suffixes_checked(self):
        diags = lint(
            "x = profile.total_bytes - machine.cache_blocks\n",
            rules=["units-mixing"],
        )
        assert rule_ids(diags) == ["units-mixing"]


# ------------------------------------------------------------ float-equality
class TestFloatEquality:
    def test_float_literal_eq_in_analysis_fires(self):
        diags = lint(
            "ok = ratio == 1.5\n",
            path="src/repro/analysis/mod.py",
            rules=["float-equality"],
        )
        assert rule_ids(diags) == ["float-equality"]

    def test_float_call_neq_in_analysis_fires(self):
        diags = lint(
            "ok = float(x) != y\n",
            path="src/repro/analysis/mod.py",
            rules=["float-equality"],
        )
        assert rule_ids(diags) == ["float-equality"]

    def test_isclose_in_analysis_quiet(self):
        diags = lint(
            """
            import math
            ok = math.isclose(ratio, 1.5, rel_tol=1e-9)
            """,
            path="src/repro/analysis/mod.py",
            rules=["float-equality"],
        )
        assert diags == []

    def test_int_equality_in_analysis_quiet(self):
        diags = lint(
            "ok = boxes == 8\n",
            path="src/repro/analysis/mod.py",
            rules=["float-equality"],
        )
        assert diags == []

    def test_outside_analysis_not_checked(self):
        diags = lint("ok = ratio == 1.5\n", rules=["float-equality"])
        assert diags == []


# ---------------------------------------------------------- frozen-dataclass
class TestFrozenDataclass:
    def test_unfrozen_result_fires(self):
        diags = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class SweepResult:
                value: float
            """,
            rules=["frozen-dataclass"],
        )
        assert rule_ids(diags) == ["frozen-dataclass"]

    def test_unfrozen_record_call_form_fires(self):
        diags = lint(
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class TrialRecord:
                value: float
            """,
            rules=["frozen-dataclass"],
        )
        assert rule_ids(diags) == ["frozen-dataclass"]

    def test_frozen_result_quiet(self):
        diags = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SweepResult:
                value: float
            """,
            rules=["frozen-dataclass"],
        )
        assert diags == []

    def test_non_dataclass_record_quiet(self):
        diags = lint(
            """
            class TraceRecorder:
                def __init__(self):
                    self.events = []
            """,
            rules=["frozen-dataclass"],
        )
        assert diags == []


# ----------------------------------------------------------- mutable-default
class TestMutableDefault:
    def test_list_literal_default_fires(self):
        diags = lint(
            """
            def collect(items=[]):
                return items
            """,
            rules=["mutable-default"],
        )
        assert rule_ids(diags) == ["mutable-default"]

    def test_dict_constructor_kwonly_default_fires(self):
        diags = lint(
            """
            def collect(*, cache=dict()):
                return cache
            """,
            rules=["mutable-default"],
        )
        assert rule_ids(diags) == ["mutable-default"]

    def test_none_default_quiet(self):
        diags = lint(
            """
            def collect(items=None):
                return list(items or ())
            """,
            rules=["mutable-default"],
        )
        assert diags == []


# ----------------------------------------------------------- module-exports
class TestModuleExports:
    def test_library_module_without_all_fires(self):
        diags = lint("def run():\n    pass\n", rules=["module-exports"])
        assert rule_ids(diags) == ["module-exports"]

    def test_script_without_all_quiet(self):
        diags = lint(
            "def main():\n    pass\n", path=SCRIPT, rules=["module-exports"]
        )
        assert diags == []

    def test_dangling_entry_fires(self):
        diags = lint(
            '__all__ = ["missing"]\n', rules=["module-exports"]
        )
        assert rule_ids(diags) == ["module-exports"]
        assert "never binds" in diags[0].message

    def test_duplicate_entry_fires(self):
        diags = lint(
            """
            __all__ = ["run", "run"]

            def run():
                pass
            """,
            rules=["module-exports"],
        )
        assert rule_ids(diags) == ["module-exports"]
        assert "duplicate" in diags[0].message

    def test_unlisted_public_def_fires(self):
        diags = lint(
            """
            __all__ = ["run"]

            def run():
                pass

            def helper():
                pass
            """,
            rules=["module-exports"],
        )
        assert rule_ids(diags) == ["module-exports"]
        assert "helper" in diags[0].message

    def test_complete_module_quiet(self):
        diags = lint(
            """
            __all__ = ["CONSTANT", "run"]

            CONSTANT = 3

            def run():
                pass

            def _private_helper():
                pass
            """,
            rules=["module-exports"],
        )
        assert diags == []

    def test_pep562_getattr_exempts_dangling(self):
        diags = lint(
            """
            __all__ = ["lazy_thing"]

            def __getattr__(name):
                raise AttributeError(name)
            """,
            rules=["module-exports"],
        )
        assert diags == []

    def test_tests_and_dunder_main_exempt(self):
        source = "def run():\n    pass\n"
        assert lint(source, path="tests/test_mod.py", rules=["module-exports"]) == []
        assert (
            lint(source, path="src/repro/__main__.py", rules=["module-exports"])
            == []
        )


# ---------------------------------------------------- wallclock-discipline
class TestWallclockDiscipline:
    def test_time_time_call_fires(self):
        diags = lint(
            """
            import time

            t0 = time.time()
            """,
            rules=["wallclock-discipline"],
        )
        assert rule_ids(diags) == ["wallclock-discipline"]
        assert diags[0].line == 4

    def test_from_time_import_time_fires(self):
        diags = lint("from time import time\n", rules=["wallclock-discipline"])
        assert rule_ids(diags) == ["wallclock-discipline"]

    def test_aliased_module_tracked(self):
        diags = lint(
            """
            import time as clock

            start = clock.time()
            """,
            rules=["wallclock-discipline"],
        )
        assert rule_ids(diags) == ["wallclock-discipline"]

    def test_bare_reference_fires_without_call(self):
        diags = lint(
            """
            import time

            timer = time.time
            """,
            rules=["wallclock-discipline"],
        )
        assert rule_ids(diags) == ["wallclock-discipline"]

    def test_good_perf_counter_quiet(self):
        diags = lint(
            """
            import time

            t0 = time.perf_counter()
            dt = time.perf_counter() - t0
            m = time.monotonic()
            """,
            rules=["wallclock-discipline"],
        )
        assert diags == []

    def test_from_time_import_perf_counter_quiet(self):
        diags = lint(
            "from time import monotonic, perf_counter\n",
            rules=["wallclock-discipline"],
        )
        assert diags == []

    def test_unrelated_time_attribute_quiet(self):
        diags = lint(
            """
            class Clock:
                def time(self):
                    return 0

            value = Clock().time()
            total_time = profile.total_time
            """,
            rules=["wallclock-discipline"],
        )
        assert diags == []

    def test_applies_to_scripts_too(self):
        diags = lint(
            "import time\n\nt = time.time()\n",
            path=SCRIPT,
            rules=["wallclock-discipline"],
        )
        assert rule_ids(diags) == ["wallclock-discipline"]


# ------------------------------------------------------- profile-discipline
class TestProfileDiscipline:
    def test_list_literal_boxes_fires(self):
        diags = lint(
            "run_boxes(spec, 64, [4, 4, 4])\n",
            rules=["profile-discipline"],
        )
        assert rule_ids(diags) == ["profile-discipline"]
        assert "SquareProfile" in diags[0].message

    def test_comprehension_boxes_keyword_fires(self):
        diags = lint(
            "run_repeated(spec, 64, boxes=[m for m in sizes])\n",
            rules=["profile-discipline"],
        )
        assert rule_ids(diags) == ["profile-discipline"]

    def test_generator_expression_fires(self):
        diags = lint(
            "run_adaptive(spec, 64, (m for m in sizes))\n",
            rules=["profile-discipline"],
        )
        assert rule_ids(diags) == ["profile-discipline"]

    def test_iter_call_on_simulator_method_fires(self):
        diags = lint(
            "sim.run(iter([1, 2, 4]))\n",
            rules=["profile-discipline"],
        )
        assert rule_ids(diags) == ["profile-discipline"]

    def test_run_to_completion_range_fires_any_receiver(self):
        diags = lint(
            "machine.run_to_completion(range(8))\n",
            rules=["profile-discipline"],
        )
        assert rule_ids(diags) == ["profile-discipline"]

    def test_profile_variable_quiet(self):
        diags = lint(
            """
            profile = worst_case_profile(2, 2, 64)
            run_boxes(spec, 64, profile)
            """,
            rules=["profile-discipline"],
        )
        assert diags == []

    def test_constructor_calls_quiet(self):
        diags = lint(
            """
            run_boxes(spec, 64, SquareProfile([1, 2, 4]))
            run_repeated(spec, 64, worst_case_boxes(2, 2, 64))
            """,
            rules=["profile-discipline"],
        )
        assert diags == []

    def test_itertools_repeat_quiet(self):
        diags = lint(
            """
            import itertools

            sim.run(itertools.repeat(box))
            """,
            rules=["profile-discipline"],
        )
        assert diags == []

    def test_non_simulator_run_method_quiet(self):
        diags = lint(
            "runner.run([\"fig1\", \"mmcount\"])\n",
            rules=["profile-discipline"],
        )
        assert diags == []

    def test_applies_to_library_code_too(self):
        diags = lint(
            "run_boxes(spec, 64, [4, 4, 4])\n",
            path=LIB.replace("mod.py", "sweep.py"),
            rules=["profile-discipline"],
        )
        assert rule_ids(diags) == ["profile-discipline"]


# ------------------------------------------------------------ rng-discipline
SIM = "src/repro/simulation/mod.py"  # inside the replay-critical layers


class TestRngDiscipline:
    def test_positional_draw_next_to_stream_param_fires(self):
        diags = lint(
            """
            def sample(stream, gen):
                u = stream.uniforms_at(0, 4)
                return gen.random(4)
            """,
            path=SIM,
            rules=["rng-discipline"],
        )
        assert rule_ids(diags) == ["rng-discipline"]
        assert "gen.random" in diags[0].message

    def test_stream_annotation_triggers_scope(self):
        diags = lint(
            """
            def sample(s: ReplayableStream, rng):
                return rng.integers(0, 8)
            """,
            path=SIM,
            rules=["rng-discipline"],
        )
        assert rule_ids(diags) == ["rng-discipline"]

    def test_local_substream_triggers_scope(self):
        diags = lint(
            """
            def trial(root, t, gen):
                ts = root.for_trial(t)
                return gen.uniform(0.0, 1.0)
            """,
            path=SIM,
            rules=["rng-discipline"],
        )
        assert rule_ids(diags) == ["rng-discipline"]

    def test_addressed_draws_quiet(self):
        diags = lint(
            """
            def sample(stream):
                u = stream.uniforms_at(0, 4)
                k = stream.integers_at(0, 4, 1, 9)
                return u, k
            """,
            path=SIM,
            rules=["rng-discipline"],
        )
        assert diags == []

    def test_no_stream_in_scope_quiet(self):
        # purely positional functions (legacy API) are rng-coerce's
        # business, not this rule's
        diags = lint(
            """
            def sample(k, gen):
                return gen.random(k)
            """,
            path=SIM,
            rules=["rng-discipline"],
        )
        assert diags == []

    def test_outside_critical_layers_quiet(self):
        diags = lint(
            """
            def sample(stream, gen):
                u = stream.uniforms_at(0, 4)
                return gen.random(4)
            """,
            path="src/repro/analysis/mod.py",
            rules=["rng-discipline"],
        )
        assert diags == []

    def test_profiles_layer_also_covered(self):
        diags = lint(
            """
            def sample(stream, gen):
                return gen.choice(gen.permutation(4))
            """,
            path="src/repro/profiles/mod.py",
            rules=["rng-discipline"],
        )
        assert rule_ids(diags) == ["rng-discipline", "rng-discipline"]

    def test_line_pragma_suppresses_legacy_branch(self):
        diags = lint(
            """
            def sample(stream, gen, legacy):
                if legacy:
                    return gen.random(4)  # repro-lint: disable=rng-discipline
                return stream.uniforms_at(0, 4)
            """,
            path=SIM,
            rules=["rng-discipline"],
        )
        assert diags == []


# ------------------------------------------------- each bad fixture, exactly
# one rule: running the FULL rule set over each snippet must produce only the
# intended rule id (the acceptance criterion for deliberately-seeded bugs).
SEEDED_VIOLATIONS = {
    "rng-factory": (SCRIPT, "import numpy as np\n\ngen = np.random.default_rng(0)\n"),
    "rng-coerce": (SCRIPT, "def sample(k, rng=None):\n    return rng.random(k)\n"),
    "rng-discipline": (
        SIM,
        '__all__ = ["sample"]\n\n\n'
        "def sample(stream, gen):\n"
        "    u = stream.uniforms_at(0, 4)\n"
        "    return gen.random(4)\n",
    ),
    "units-mixing": (SCRIPT, "total = cache_bytes + cache_blocks\n"),
    "float-equality": ("src/repro/analysis/mod.py", "__all__ = []\nok = ratio == 1.5\n"),
    "frozen-dataclass": (
        SCRIPT,
        "from dataclasses import dataclass\n\n\n"
        "@dataclass\nclass SweepResult:\n    value: float\n",
    ),
    "mutable-default": (SCRIPT, "def collect(items=[]):\n    return items\n"),
    "module-exports": (LIB, '__all__ = ["missing"]\n'),
    "wallclock-discipline": (SCRIPT, "import time\n\nt0 = time.time()\n"),
    "profile-discipline": (SCRIPT, "run_boxes(spec, 64, [4, 4, 4])\n"),
}


@pytest.mark.parametrize("expected_rule", sorted(SEEDED_VIOLATIONS))
def test_seeded_violation_detected_by_exactly_the_intended_rule(expected_rule):
    path, source = SEEDED_VIOLATIONS[expected_rule]
    diags = lint_source(source, path=path)
    assert [d.rule for d in diags] == [expected_rule]
