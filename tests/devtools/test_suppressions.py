"""Suppression-index edge cases: multi-rule disables, pragmas guarding
decorated definitions, and stale-suppression reporting."""

from __future__ import annotations

import ast
import textwrap

from repro.cli import main
from repro.devtools import Diagnostic, lint_source, scan_suppressions


def dedent(source: str) -> str:
    return textwrap.dedent(source)


def diag(line: int, rule: str) -> Diagnostic:
    return Diagnostic("f.py", line, 1, rule, "m")


class TestMultiRuleDisables:
    def test_one_pragma_many_rules(self):
        index = scan_suppressions(
            "x = 1  # repro-lint: disable=a-rule,b-rule, c-rule\n"
        )
        for rule in ("a-rule", "b-rule", "c-rule"):
            assert index.is_suppressed(diag(1, rule))
        assert not index.is_suppressed(diag(1, "d-rule"))

    def test_stacked_pragmas_accumulate_on_one_target(self):
        source = (
            "# repro-lint: disable=a-rule\n"
            "x = 1  # repro-lint: disable=b-rule\n"
        )
        index = scan_suppressions(source)
        assert index.is_suppressed(diag(2, "a-rule"))
        assert index.is_suppressed(diag(2, "b-rule"))

    def test_file_and_line_scopes_are_independent(self):
        source = (
            "# repro-lint: disable-file=a-rule\n"
            "x = 1  # repro-lint: disable=b-rule\n"
        )
        index = scan_suppressions(source)
        assert index.is_suppressed(diag(99, "a-rule"))  # anywhere
        assert index.is_suppressed(diag(2, "b-rule"))
        assert not index.is_suppressed(diag(99, "b-rule"))

    def test_duplicate_rule_in_one_pragma_collapses(self):
        index = scan_suppressions("x = 1  # repro-lint: disable=a-rule,a-rule\n")
        (sup,) = index.suppressions
        assert sup.rules == ("a-rule",)

    def test_multi_rule_lint_integration(self):
        source = dedent(
            """
            import numpy as np

            __all__ = []
            gen = np.random.default_rng(0)  # repro-lint: disable=rng-factory,units-mixing
            """
        )
        assert lint_source(source, path="benchmarks/x.py") == []


class TestDecoratedDefs:
    DECORATED = dedent(
        """
        import functools

        # repro-lint: disable=some-rule
        @functools.lru_cache
        def cached(x):
            return x
        """
    )

    def index(self, source):
        return scan_suppressions(source, ast.parse(source))

    def test_pragma_above_decorator_covers_the_def_line(self):
        index = self.index(self.DECORATED)
        # rules anchor at the def line (6), not the decorator line (5)
        assert index.is_suppressed(diag(6, "some-rule"))

    def test_pragma_trailing_the_decorator_covers_the_def_line(self):
        source = dedent(
            """
            import functools

            @functools.lru_cache  # repro-lint: disable=some-rule
            def cached(x):
                return x
            """
        )
        index = self.index(source)
        assert index.is_suppressed(diag(5, "some-rule"))

    def test_without_tree_only_the_literal_line_is_covered(self):
        index = scan_suppressions(self.DECORATED)  # no AST handed in
        assert index.is_suppressed(diag(5, "some-rule"))
        assert not index.is_suppressed(diag(6, "some-rule"))

    def test_decorated_def_lint_integration(self):
        source = dedent(
            """
            import functools

            __all__ = []

            # module-exports anchors its diagnostic at the def line
            # repro-lint: disable=module-exports
            @functools.lru_cache
            def helper(x):
                return x
            """
        )
        assert lint_source(source, path="src/x.py") == []

    def test_unsuppressed_decorated_def_still_fires(self):
        source = dedent(
            """
            import functools

            __all__ = []

            @functools.lru_cache
            def helper(x):
                return x
            """
        )
        diags = lint_source(source, path="src/x.py")
        assert [d.rule for d in diags] == ["module-exports"]
        assert diags[0].line == 7  # anchored at the def, not the decorator


class TestStaleSuppressions:
    def test_matched_pragma_is_not_stale(self):
        index = scan_suppressions("x = 1  # repro-lint: disable=a-rule\n")
        assert index.is_suppressed(diag(1, "a-rule"))
        assert list(index.iter_stale()) == []

    def test_unmatched_pragma_is_stale(self):
        index = scan_suppressions("x = 1  # repro-lint: disable=a-rule\n")
        assert list(index.iter_stale()) == [(1, "a-rule")]

    def test_staleness_is_per_rule_within_one_pragma(self):
        index = scan_suppressions(
            "x = 1  # repro-lint: disable=a-rule,b-rule\n"
        )
        assert index.is_suppressed(diag(1, "a-rule"))
        assert list(index.iter_stale()) == [(1, "b-rule")]

    def test_unknown_rules_are_not_ours_to_judge(self):
        index = scan_suppressions("x = 1  # repro-lint: disable=their-rule\n")
        assert list(index.iter_stale(known_rules={"our-rule"})) == []
        assert list(index.iter_stale(known_rules={"their-rule"})) == [
            (1, "their-rule")
        ]

    def test_all_pragma_stale_only_when_nothing_matched(self):
        source = "x = 1  # repro-lint: disable=all\n"
        index = scan_suppressions(source)
        assert list(index.iter_stale()) == [(1, "all")]
        index = scan_suppressions(source)
        assert index.is_suppressed(diag(1, "any-rule"))
        assert list(index.iter_stale()) == []

    def test_lint_source_reports_stale(self):
        source = dedent(
            """
            __all__ = []
            x = 1  # repro-lint: disable=rng-factory
            """
        )
        diags = lint_source(source, path="src/x.py", report_stale=True)
        assert [d.rule for d in diags] == ["stale-suppression"]
        assert diags[0].line == 3
        assert "rng-factory" in diags[0].message

    def test_live_waiver_not_reported(self):
        source = dedent(
            """
            import numpy as np

            __all__ = []
            gen = np.random.default_rng(0)  # repro-lint: disable=rng-factory
            """
        )
        assert lint_source(source, path="src/x.py", report_stale=True) == []

    def test_foreign_rule_waiver_not_reported_by_lint(self):
        # nondet-* waivers are consumed by `repro analyze`, not the
        # shallow linter — lint --stale must not call them stale.
        source = dedent(
            """
            import time

            __all__ = []
            T0 = time.time()  # repro-lint: disable=nondet-wallclock
            """
        )
        diags = lint_source(source, path="src/x.py", report_stale=True)
        assert "stale-suppression" not in {d.rule for d in diags}

    def test_cli_stale_flag(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(
            "__all__ = []\nx = 1  # repro-lint: disable=rng-factory\n",
            encoding="utf-8",
        )
        assert main(["lint", str(target)]) == 0
        assert main(["lint", "--stale", str(target)]) == 1
        assert "stale-suppression" in capsys.readouterr().out
