"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_with_flags(self):
        args = build_parser().parse_args(["run", "fig1", "gap", "--full", "--seed", "3"])
        assert args.ids == ["fig1", "gap"]
        assert not args.quick and args.seed == 3

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig1"])
        assert args.jobs == 1 and args.json_dir is None
        assert args.quick  # quick is the default for run
        assert args.cache == "auto" and args.cache_dir is None

    def test_run_jobs_and_json_flags(self):
        args = build_parser().parse_args(
            ["run", "all", "--jobs", "4", "--json", "artifacts"]
        )
        assert args.jobs == 4 and args.json_dir == "artifacts"

    def test_run_cache_flags(self):
        parser = build_parser()
        assert parser.parse_args(["run", "fig1", "--no-cache"]).cache == "off"
        assert parser.parse_args(["run", "fig1", "--refresh"]).cache == "refresh"
        args = parser.parse_args(["run", "fig1", "--cache-dir", "/tmp/c"])
        assert args.cache_dir == "/tmp/c"

    def test_no_cache_and_refresh_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig1", "--no-cache", "--refresh"])

    def test_quick_full_mutually_exclusive_everywhere(self):
        parser = build_parser()
        for sub in (
            ["run", "fig1"],
            ["show-profile", "64"],
            ["solve", "--n", "64", "--dist", "point:16"],
            ["bench"],
        ):
            with pytest.raises(SystemExit):
                parser.parse_args([*sub, "--quick", "--full"])

    def test_show_profile(self):
        args = build_parser().parse_args(["show-profile", "64"])
        assert args.pos_n == 64 and args.n is None
        flagged = build_parser().parse_args(["show-profile", "--n", "64"])
        assert flagged.n == 64
        assert flagged.quick and flagged.seed == 0

    def test_solve_defaults_to_full(self):
        args = build_parser().parse_args(
            ["solve", "--n", "64", "--dist", "point:16"]
        )
        assert not args.quick  # exact DP is the default for solve
        assert args.seed == 0 and args.json_dir is None

    def test_cache_subcommands(self):
        parser = build_parser()
        assert parser.parse_args(["cache", "stats"]).cache_command == "stats"
        assert parser.parse_args(["cache", "clear"]).cache_command == "clear"
        verify = parser.parse_args(
            ["cache", "verify", "--sample", "0", "--jobs", "4", "--seed", "2"]
        )
        assert verify.cache_command == "verify"
        assert verify.sample == 0 and verify.jobs == 4 and verify.seed == 2
        with pytest.raises(SystemExit):
            parser.parse_args(["cache"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.ids == [] and args.output is None
        assert args.suite == "cache"
        assert args.quick and args.jobs == 1
        assert args.history is False

    def test_bench_suite_flag(self):
        args = build_parser().parse_args(["bench", "--suite", "sim"])
        assert args.suite == "sim"

    def test_bench_history_flag(self):
        args = build_parser().parse_args(["bench", "fig1", "--history"])
        assert args.history is True

    def test_cache_gc_flags(self):
        parser = build_parser()
        args = parser.parse_args(["cache", "gc"])
        assert args.cache_command == "gc"
        assert args.max_bytes is None and args.max_entries is None
        assert args.max_age_days is None and args.tmp_grace_s is None
        assert not args.dry_run and not args.fail_on_debris
        args = parser.parse_args(
            [
                "cache", "gc", "--max-bytes", "1024", "--max-entries", "5",
                "--max-age-days", "30", "--tmp-grace-s", "0",
                "--dry-run", "--fail-on-debris",
            ]
        )
        assert args.max_bytes == 1024 and args.max_entries == 5
        assert args.max_age_days == 30.0 and args.tmp_grace_s == 0.0
        assert args.dry_run and args.fail_on_debris

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "shuffle" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_show_profile(self, capsys):
        assert main(["show-profile", "64"]) == 0
        out = capsys.readouterr().out
        assert "boxes" in out

    def test_show_profile_invalid(self, capsys):
        assert main(["show-profile", "10"]) == 2

    def test_show_profile_needs_a_size(self, capsys):
        assert main(["show-profile"]) == 2
        assert "problem size" in capsys.readouterr().err

    def test_show_profile_conflicting_sizes(self, capsys):
        assert main(["show-profile", "64", "--n", "256"]) == 2

    def test_show_profile_full_prints_census(self, capsys):
        assert main(["show-profile", "256", "--full"]) == 0
        out = capsys.readouterr().out
        assert "box census" in out and "1: 4096" in out

    def test_show_profile_json(self, tmp_path, capsys):
        import json

        assert main(["show-profile", "256", "--json", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "profile.json").read_text())
        assert payload["n"] == 256 and payload["boxes"] == 4681
        assert payload["size_census"]["1"] == 4096

    def test_solve_json(self, tmp_path, capsys):
        import json

        assert main(
            [
                "solve", "--n", "64", "--dist", "point:16",
                "--json", str(tmp_path), "--seed", "5",
            ]
        ) == 0
        payload = json.loads((tmp_path / "solve.json").read_text())
        assert payload["seed"] == 5 and payload["quick"] is False
        assert payload["levels"] and "eq8_product" in payload

    def test_solve_quick_announces_approximation(self, capsys):
        assert main(["solve", "--n", "64", "--dist", "point:16", "--quick"]) == 0
        assert "Wald-midpoint" in capsys.readouterr().out


class TestCacheCommands:
    def test_warm_run_reports_hits(self, capsys):
        assert main(["run", "fig1"]) == 0
        capsys.readouterr()
        assert main(["run", "fig1"]) == 0
        captured = capsys.readouterr()
        assert "REPRODUCED" in captured.out
        assert "cache: 1/1 hit(s)" in captured.err

    def test_no_cache_never_hits(self, capsys):
        assert main(["run", "fig1", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["run", "fig1", "--no-cache"]) == 0
        assert "cache:" not in capsys.readouterr().err

    def test_warm_output_matches_cold(self, capsys):
        assert main(["run", "fig1"]) == 0
        cold = capsys.readouterr().out
        assert main(["run", "fig1"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_stats_clear_roundtrip(self, capsys):
        assert main(["run", "fig1"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out and "fig1" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_verify_ok(self, capsys):
        assert main(["run", "fig1"]) == 0
        capsys.readouterr()
        assert main(["cache", "verify", "--sample", "0"]) == 0
        out = capsys.readouterr().out
        assert "1 checked, 0 mismatch(es)" in out

    def test_bench_writes_report(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "BENCH_cache.json"
        assert main(["bench", "fig1", "-o", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["bit_identical"] is True
        assert payload["warm_hits"] == 1
        assert "speedup" in capsys.readouterr().out

    def test_bench_history_accumulates_and_checks_regression(
        self, tmp_path, capsys
    ):
        # the acceptance scenario: two consecutive --history invocations
        # append two records, and the second is checked against the first
        import json

        out_file = tmp_path / "BENCH_cache.json"
        assert main(["bench", "fig1", "-o", str(out_file), "--history"]) == 0
        first = capsys.readouterr().out
        assert "no baseline yet (0 of 2 comparable prior record(s)" in first
        assert main(["bench", "fig1", "-o", str(out_file), "--history"]) == 0
        second = capsys.readouterr().out
        payload = json.loads(out_file.read_text())
        assert len(payload["records"]) == 2
        assert "regression check:" in second
        # one comparable predecessor is still below the min_records floor
        assert "1 of 2 comparable prior record(s)" in second
        assert "bench history (cache-cold-vs-warm)" in second  # trend table

    def test_bench_history_migrates_legacy_file(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "BENCH_cache.json"
        # a PR-3 single-record file already on disk
        assert main(["bench", "fig1", "-o", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["bench", "fig1", "-o", str(out_file), "--history"]) == 0
        payload = json.loads(out_file.read_text())
        assert len(payload["records"]) == 2  # legacy record adopted
        assert "regression check:" in capsys.readouterr().out

    def test_json_manifest_records_gc_counters(self, tmp_path, capsys):
        from repro.runtime import RunManifest

        art_dir = tmp_path / "artifacts"
        assert main(["run", "fig1", "--json", str(art_dir)]) == 0
        manifest = RunManifest.from_json(
            (art_dir / "manifest.json").read_text()
        )
        assert manifest.gc is not None
        assert manifest.gc["evicted_entries"] == 0

    def test_stats_reports_debris_and_gc(self, capsys):
        from repro.cache.store import default_cache_dir

        assert main(["run", "fig1"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        # a `run` auto-GCs afterwards, so stats already shows counters
        assert "temp debris: 0 file(s)" in out
        assert "gc: 1 collection(s)" in out
        debris = default_cache_dir() / ".tmp-orphan.json"
        debris.write_text("x", encoding="utf-8")
        assert main(["cache", "stats"]) == 0
        assert "temp debris: 1 file(s)" in capsys.readouterr().out

    def test_gc_dry_run_deletes_nothing(self, capsys):
        assert main(["run", "fig1"]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would evict 0/1" in out
        assert main(["cache", "stats"]) == 0
        assert "entries: 1" in capsys.readouterr().out

    def test_gc_evicts_under_entry_budget(self, capsys):
        assert main(["run", "fig1", "--seed", "0"]) == 0
        assert main(["run", "fig1", "--seed", "1"]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--max-entries", "1"]) == 0
        out = capsys.readouterr().out
        assert "evicted 1/2" in out
        assert main(["cache", "stats"]) == 0
        assert "entries: 1" in capsys.readouterr().out

    def test_gc_fail_on_debris(self, capsys):
        from repro.cache.store import default_cache_dir

        assert main(["run", "fig1"]) == 0
        capsys.readouterr()
        # quiesced store, zero grace: the CI guard passes when clean...
        assert main(
            ["cache", "gc", "--dry-run", "--fail-on-debris",
             "--tmp-grace-s", "0"]
        ) == 0
        capsys.readouterr()
        # ...and fails once orphaned write debris shows up
        (default_cache_dir() / ".tmp-orphan.json").write_text(
            "x", encoding="utf-8"
        )
        assert main(
            ["cache", "gc", "--dry-run", "--fail-on-debris",
             "--tmp-grace-s", "0"]
        ) == 1
        assert "orphaned .tmp-*" in capsys.readouterr().err

    def test_gc_json_payload(self, tmp_path, capsys):
        import json

        assert main(["run", "fig1"]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--json", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "cache_gc.json").read_text())
        assert payload["command"] == "cache-gc"
        assert payload["examined_entries"] == 1
        assert payload["dry_run"] is False

    def test_json_manifest_records_warm_hits(self, tmp_path, capsys):
        from repro.runtime import RunManifest

        assert main(["run", "fig1"]) == 0
        art_dir = tmp_path / "artifacts"
        assert main(["run", "fig1", "--json", str(art_dir)]) == 0
        manifest = RunManifest.from_json((art_dir / "manifest.json").read_text())
        assert manifest.cache_hits == 1
        assert manifest.entries[0].cache_hit is True
        assert manifest.saved_wall_time_s > 0


class TestOutputFile:
    def test_run_writes_report_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.txt"
        assert main(["run", "fig1", "-o", str(out)]) == 0
        text = out.read_text()
        assert "fig1" in text and "REPRODUCED" in text

    def test_report_file_matches_stdout(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["run", "fig1", "mmcount", "-o", str(out)]) == 0
        printed = capsys.readouterr().out
        assert out.read_text() == printed


class TestJsonArtifacts:
    def test_json_dir_written(self, tmp_path, capsys):
        from repro.runtime import RunArtifact, RunManifest

        art_dir = tmp_path / "artifacts"
        assert main(["run", "fig1", "--json", str(art_dir)]) == 0
        artifact = RunArtifact.from_json((art_dir / "fig1.json").read_text())
        assert artifact.experiment_id == "fig1"
        assert artifact.reproduced and artifact.wall_time_s > 0
        manifest = RunManifest.from_json((art_dir / "manifest.json").read_text())
        assert manifest.jobs == 1 and manifest.seed == 0 and manifest.quick
        assert [e.experiment_id for e in manifest.entries] == ["fig1"]
        assert manifest.entries[0].artifact == "fig1.json"
        assert manifest.total_wall_time_s > 0

    def test_json_with_jobs(self, tmp_path, capsys):
        from repro.runtime import RunManifest

        art_dir = tmp_path / "artifacts"
        assert main(
            ["run", "fig1", "mmcount", "--jobs", "2", "--json", str(art_dir)]
        ) == 0
        manifest = RunManifest.from_json((art_dir / "manifest.json").read_text())
        assert manifest.jobs == 2
        assert {e.experiment_id for e in manifest.entries} == {"fig1", "mmcount"}
        assert (art_dir / "mmcount.json").exists()

    def test_text_output_independent_of_jobs(self, tmp_path, capsys):
        assert main(["run", "fig1", "mmcount"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "fig1", "mmcount", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestPackageInit:
    def test_lazy_simulation_attr(self):
        import repro

        assert repro.SymbolicSimulator is not None

    def test_lazy_analysis_attr(self):
        import repro

        assert callable(repro.expected_cost_ratio)

    def test_unknown_attr(self):
        import repro

        with pytest.raises(AttributeError):
            repro.no_such_thing

    def test_version(self):
        import repro

        assert repro.__version__
