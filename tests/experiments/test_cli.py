"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_with_flags(self):
        args = build_parser().parse_args(["run", "fig1", "gap", "--full", "--seed", "3"])
        assert args.ids == ["fig1", "gap"]
        assert args.full and args.seed == 3

    def test_show_profile(self):
        args = build_parser().parse_args(["show-profile", "64"])
        assert args.n == 64

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "shuffle" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_show_profile(self, capsys):
        assert main(["show-profile", "64"]) == 0
        out = capsys.readouterr().out
        assert "boxes" in out

    def test_show_profile_invalid(self, capsys):
        assert main(["show-profile", "10"]) == 2


class TestOutputFile:
    def test_run_writes_report_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.txt"
        assert main(["run", "fig1", "-o", str(out)]) == 0
        text = out.read_text()
        assert "fig1" in text and "REPRODUCED" in text


class TestPackageInit:
    def test_lazy_simulation_attr(self):
        import repro

        assert repro.SymbolicSimulator is not None

    def test_lazy_analysis_attr(self):
        import repro

        assert callable(repro.expected_cost_ratio)

    def test_unknown_attr(self):
        import repro

        with pytest.raises(AttributeError):
            repro.no_such_thing

    def test_version(self):
        import repro

        assert repro.__version__
