"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_with_flags(self):
        args = build_parser().parse_args(["run", "fig1", "gap", "--full", "--seed", "3"])
        assert args.ids == ["fig1", "gap"]
        assert args.full and args.seed == 3

    def test_run_defaults_jobs_and_json(self):
        args = build_parser().parse_args(["run", "fig1"])
        assert args.jobs == 1 and args.json_dir is None

    def test_run_jobs_and_json_flags(self):
        args = build_parser().parse_args(
            ["run", "all", "--jobs", "4", "--json", "artifacts"]
        )
        assert args.jobs == 4 and args.json_dir == "artifacts"

    def test_show_profile(self):
        args = build_parser().parse_args(["show-profile", "64"])
        assert args.n == 64

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "shuffle" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_show_profile(self, capsys):
        assert main(["show-profile", "64"]) == 0
        out = capsys.readouterr().out
        assert "boxes" in out

    def test_show_profile_invalid(self, capsys):
        assert main(["show-profile", "10"]) == 2


class TestOutputFile:
    def test_run_writes_report_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.txt"
        assert main(["run", "fig1", "-o", str(out)]) == 0
        text = out.read_text()
        assert "fig1" in text and "REPRODUCED" in text

    def test_report_file_matches_stdout(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["run", "fig1", "mmcount", "-o", str(out)]) == 0
        printed = capsys.readouterr().out
        assert out.read_text() == printed


class TestJsonArtifacts:
    def test_json_dir_written(self, tmp_path, capsys):
        from repro.runtime import RunArtifact, RunManifest

        art_dir = tmp_path / "artifacts"
        assert main(["run", "fig1", "--json", str(art_dir)]) == 0
        artifact = RunArtifact.from_json((art_dir / "fig1.json").read_text())
        assert artifact.experiment_id == "fig1"
        assert artifact.reproduced and artifact.wall_time_s > 0
        manifest = RunManifest.from_json((art_dir / "manifest.json").read_text())
        assert manifest.jobs == 1 and manifest.seed == 0 and manifest.quick
        assert [e.experiment_id for e in manifest.entries] == ["fig1"]
        assert manifest.entries[0].artifact == "fig1.json"
        assert manifest.total_wall_time_s > 0

    def test_json_with_jobs(self, tmp_path, capsys):
        from repro.runtime import RunManifest

        art_dir = tmp_path / "artifacts"
        assert main(
            ["run", "fig1", "mmcount", "--jobs", "2", "--json", str(art_dir)]
        ) == 0
        manifest = RunManifest.from_json((art_dir / "manifest.json").read_text())
        assert manifest.jobs == 2
        assert {e.experiment_id for e in manifest.entries} == {"fig1", "mmcount"}
        assert (art_dir / "mmcount.json").exists()

    def test_text_output_independent_of_jobs(self, tmp_path, capsys):
        assert main(["run", "fig1", "mmcount"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "fig1", "mmcount", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestPackageInit:
    def test_lazy_simulation_attr(self):
        import repro

        assert repro.SymbolicSimulator is not None

    def test_lazy_analysis_attr(self):
        import repro

        assert callable(repro.expected_cost_ratio)

    def test_unknown_attr(self):
        import repro

        with pytest.raises(AttributeError):
            repro.no_such_thing

    def test_version(self):
        import repro

        assert repro.__version__
