"""Integration: every registered experiment runs in quick mode and
reports its claim as reproduced.

These are the end-to-end reproduction gates: a regression anywhere in the
profile constructions, simulators, or solvers shows up here as a
``reproduced: False`` verdict.  The slowest experiments are marked so
``-m "not slow"`` keeps iteration fast.
"""

import pytest

from repro.api import run
from repro.experiments.registry import EXPERIMENTS

FAST = ["fig1", "mmcount", "lemma1", "eq8", "scanhide", "abeq"]
MEDIUM = ["gap", "regimes", "nocatchup", "xcheck", "shuffle", "realistic"]
SLOW = ["iid", "lemma3", "sizepert", "shiftpert", "orderpert", "randomized", "ablation", "oracle"]


@pytest.mark.parametrize("experiment_id", FAST)
def test_fast_experiment_reproduces(experiment_id):
    result = run(experiment_id, quick=True, seed=0, cache="off")
    assert result.metrics.get("reproduced") is True, result.render()


@pytest.mark.parametrize("experiment_id", MEDIUM)
def test_medium_experiment_reproduces(experiment_id):
    result = run(experiment_id, quick=True, seed=0, cache="off")
    assert result.metrics.get("reproduced") is True, result.render()


@pytest.mark.slow
@pytest.mark.parametrize("experiment_id", SLOW)
def test_slow_experiment_reproduces(experiment_id):
    result = run(experiment_id, quick=True, seed=0, cache="off")
    assert result.metrics.get("reproduced") is True, result.render()


def test_partition_covers_registry():
    assert set(FAST) | set(MEDIUM) | set(SLOW) == set(EXPERIMENTS)


def test_every_result_renders():
    result = run("fig1", quick=True, cache="off")
    text = result.render()
    assert result.experiment_id in text
    assert result.tables
