"""Unit tests for the experiment registry and result rendering."""

import pytest

from repro.api import run
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentResult, ResultTable
from repro.experiments.registry import EXPERIMENTS


class TestRegistry:
    def test_all_experiments_registered(self):
        assert len(EXPERIMENTS) == 20

    def test_expected_ids(self):
        assert set(EXPERIMENTS) == {
            "fig1",
            "gap",
            "mmcount",
            "iid",
            "lemma3",
            "eq8",
            "sizepert",
            "shiftpert",
            "orderpert",
            "shuffle",
            "lemma1",
            "nocatchup",
            "regimes",
            "scanhide",
            "xcheck",
            "randomized",
            "abeq",
            "ablation",
            "realistic",
            "oracle",
        }

    def test_metadata_populated(self):
        for exp in EXPERIMENTS.values():
            assert exp.title and exp.claim
            assert callable(exp.runner)

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            run("nope")


class TestResultRendering:
    def test_render_contains_tables_and_verdict(self):
        res = ExperimentResult("x", "Title", "Claim")
        res.add_table("T", ["a", "b"], [(1, 2.5)])
        res.metrics["reproduced"] = True
        res.verdict = "REPRODUCED"
        text = res.render()
        assert "Title" in text and "T" in text and "REPRODUCED" in text

    def test_add_table_freezes_rows(self):
        res = ExperimentResult("x", "t", "c")
        res.add_table("T", ["a"], [[1]])
        assert isinstance(res.tables[0], ResultTable)
        assert res.tables[0].rows == ((1,),)

    def test_str_is_render(self):
        res = ExperimentResult("x", "t", "c")
        assert str(res) == res.render()
