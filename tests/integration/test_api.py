"""The ``repro.api`` façade: blessed surface + deprecation shims."""

import warnings

import pytest

from repro import api


class TestSurface:
    def test_all_is_the_contract(self):
        assert api.__all__ == [
            "WIRE_VERSION",
            "RunRequest",
            "RunResponse",
            "execute",
            "run",
            "run_all",
            "solve",
            "load_artifact",
            "Cache",
        ]
        for name in api.__all__:
            member = getattr(api, name)
            assert callable(member) or name == "WIRE_VERSION"

    def test_package_attribute_reaches_facade(self):
        import repro

        assert repro.api is api


class TestRun:
    def test_run_returns_instrumented_artifact(self):
        artifact = api.run("fig1")
        assert artifact.experiment_id == "fig1"
        assert artifact.wall_time_s > 0
        assert artifact.counters

    def test_run_hits_cache_on_second_call(self):
        cold = api.run("fig1")
        warm = api.run("fig1")
        assert cold.cache_hit is False and warm.cache_hit is True
        assert warm.without_timing().to_json() == cold.without_timing().to_json()

    def test_run_cache_off(self):
        artifact = api.run("fig1", cache="off")
        assert artifact.cache_hit is None

    def test_run_all_subset_ordered_mapping(self):
        artifacts = api.run_all(["mmcount", "fig1"])
        assert list(artifacts) == ["mmcount", "fig1"]
        assert all(a.experiment_id == eid for eid, a in artifacts.items())


class TestSolve:
    def test_accepts_typed_objects(self):
        from repro.algorithms.library import MM_SCAN
        from repro.profiles.distributions import PointMass

        solution = api.solve(MM_SCAN, 64, PointMass(16))
        assert solution.eq8_product() > 0

    def test_accepts_names_and_dsl(self):
        from repro.algorithms.library import MM_SCAN
        from repro.profiles.distributions import PointMass

        by_name = api.solve("MM-SCAN", 64, "point:16")
        by_object = api.solve(MM_SCAN, 64, PointMass(16))
        assert by_name is by_object  # same memo entry

    def test_unknown_spec_name_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            api.solve("NOPE", 64, "point:16")


class TestLoadArtifact:
    def test_round_trips_run_json(self, tmp_path):
        artifact = api.run("fig1", cache="off")
        path = tmp_path / "fig1.json"
        path.write_text(artifact.to_json(), encoding="utf-8")
        loaded = api.load_artifact(str(path))
        assert loaded == artifact

    def test_reads_raw_store_entry(self, tmp_path):
        api.run("fig1", cache_dir=str(tmp_path / "store"))
        entry = next(api.Cache(tmp_path / "store").iter_entries())
        loaded = api.load_artifact(str(entry.path))
        assert loaded.experiment_id == "fig1"

    def test_missing_file_raises(self, tmp_path):
        from repro.errors import ArtifactError

        with pytest.raises(ArtifactError):
            api.load_artifact(str(tmp_path / "ghost.json"))

    def test_invalid_json_raises(self, tmp_path):
        from repro.errors import ArtifactError

        bad = tmp_path / "bad.json"
        bad.write_text("{nope", encoding="utf-8")
        with pytest.raises(ArtifactError):
            api.load_artifact(str(bad))


class TestDeprecationShims:
    def test_registry_run_experiment_warns_and_works(self):
        import repro.experiments.registry as registry

        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            func = registry.run_experiment
        artifact = func("fig1")
        assert artifact.experiment_id == "fig1"

    def test_registry_run_all_warns_and_delegates(self, monkeypatch):
        import repro.experiments.registry as registry

        with pytest.warns(DeprecationWarning, match="repro.api.run_all"):
            func = registry.run_all
        # delegate check via stub: running the full registry here would
        # dominate the suite's wall time for no extra coverage
        seen = {}

        def fake_run_all(**kwargs):
            seen.update(kwargs)
            return {"fig1": None}

        monkeypatch.setattr(api, "run_all", fake_run_all)
        assert func(quick=True, seed=3, jobs=2) == {"fig1": None}
        assert seen == {"quick": True, "seed": 3, "jobs": 2, "cache": "off"}

    def test_top_level_run_one_warns_and_works(self):
        import repro

        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            func = repro.run_one
        assert func("fig1", quick=True, seed=0).experiment_id == "fig1"

    def test_registry_unknown_attr_still_raises(self):
        import repro.experiments.registry as registry

        with pytest.raises(AttributeError):
            registry.definitely_not_a_thing

    def test_runtime_run_one_does_not_warn(self):
        from repro.runtime import run_one

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_one("fig1", quick=True, seed=0)
