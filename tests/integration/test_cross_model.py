"""Cross-model integration: symbolic simulator vs trace machine vs DAM.

The three execution layers (abstract recursion, literal block traces,
classic fixed-memory machine) must tell the same story on the same
workloads.
"""

import itertools

import numpy as np
import pytest

from repro.algorithms.library import MM_INPLACE, MM_SCAN
from repro.algorithms.mm import mm_inplace, mm_scan
from repro.algorithms.spec import RegularSpec
from repro.algorithms.traces import synthetic_trace
from repro.machine.ca_machine import simulate_ca
from repro.machine.dam import simulate_dam
from repro.machine.square_machine import run_trace_on_boxes
from repro.profiles.base import MemoryProfile
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.symbolic import SymbolicSimulator


class TestSyntheticTraceVsSymbolic:
    @pytest.mark.parametrize("spec", [MM_SCAN, RegularSpec(8, 4, 0.0)],
                             ids=["c1", "c0"])
    def test_worst_case_box_counts_close(self, spec):
        n = 64
        trace = synthetic_trace(spec, n)
        profile = worst_case_profile(spec.a, spec.b, n)
        machine = run_trace_on_boxes(trace, profile)
        symbolic = SymbolicSimulator(spec, n, model="recursive").run(profile)
        assert machine.completed and symbolic.completed
        assert machine.boxes_used <= symbolic.boxes_used
        assert machine.boxes_used >= 0.5 * symbolic.boxes_used

    def test_constant_boxes_agree(self):
        n = 64
        spec = MM_SCAN
        trace = synthetic_trace(spec, n)
        machine = run_trace_on_boxes(trace, itertools.repeat(16))
        symbolic = SymbolicSimulator(spec, n, model="recursive").run(
            itertools.repeat(16)
        )
        assert machine.completed and symbolic.completed
        ratio = machine.boxes_used / symbolic.boxes_used
        assert 0.3 < ratio <= 1.5

    def test_machine_leaves_cover_everything(self):
        n = 64
        trace = synthetic_trace(MM_SCAN, n)
        rec = run_trace_on_boxes(trace, itertools.repeat(8))
        assert rec.leaves_touched_per_box(trace).sum() >= trace.n_leaves


class TestRealKernelsOnMachines:
    def test_real_mm_gap_direction(self, rng):
        """On equal constant boxes, the real MM-SCAN trace needs more
        boxes relative to its work than MM-INPLACE (the scan overhead)."""
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        t_scan = mm_scan(a, b).trace
        t_inplace = mm_inplace(a, b).trace
        box = 96
        r_scan = run_trace_on_boxes(t_scan, itertools.repeat(box))
        r_inplace = run_trace_on_boxes(t_inplace, itertools.repeat(box))
        assert r_scan.completed and r_inplace.completed
        assert r_scan.boxes_used >= r_inplace.boxes_used

    def test_square_machine_matches_ca_machine_per_box(self, rng):
        """A square profile expanded to steps with cache cleared at
        boundaries is exactly what the square machine models; the general
        CA machine with the same capacities can only do better (no
        clearing)."""
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        trace = mm_inplace(a, b).trace
        boxes = [64, 64, 64, 64, 64, 64, 64, 64, 64, 64]
        sq = run_trace_on_boxes(trace, boxes)
        steps = MemoryProfile(np.repeat(boxes, boxes))
        ca = simulate_ca(trace, steps, policy="lru")
        if sq.completed:
            assert ca.completed

    def test_dam_io_decreases_with_memory(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        trace = mm_scan(a, b).trace
        ios = [simulate_dam(trace, m).io_count for m in (16, 64, 256)]
        assert ios == sorted(ios, reverse=True)
        assert ios[0] > ios[-1]


class TestDamSqrtMLaw:
    def test_mm_scan_io_scaling(self, rng):
        """MM-SCAN's DAM I/O is Theta(N^1.5 / sqrt(M)): quadrupling the
        cache should roughly halve the I/Os (loose envelope for the small
        sizes a unit test can afford)."""
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        trace = mm_scan(a, b, base_n=2).trace
        io_small = simulate_dam(trace, 64, policy="opt").io_count
        io_big = simulate_dam(trace, 256, policy="opt").io_count
        shrink = io_small / io_big
        assert 1.3 < shrink < 3.5
