"""Public-API surface checks: everything advertised in __all__ resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.util",
    "repro.profiles",
    "repro.algorithms",
    "repro.machine",
    "repro.simulation",
    "repro.analysis",
    "repro.runtime",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert getattr(mod, symbol, None) is not None, f"{name}.{symbol}"


def test_top_level_getattr_paths():
    import repro

    assert repro.run_boxes is not None
    assert repro.adaptivity_ratio is not None


def test_error_hierarchy():
    import repro

    for exc in (
        repro.SpecError,
        repro.ProfileError,
        repro.DistributionError,
        repro.SimulationError,
        repro.TraceError,
        repro.MachineError,
        repro.ExperimentError,
    ):
        assert issubclass(exc, repro.ReproError)
        assert issubclass(exc, Exception)
