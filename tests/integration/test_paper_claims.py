"""End-to-end assertions of the paper's headline claims.

Each test states one claim from the paper and verifies it quantitatively
through the library's public API — these are the reproduction's contract.
"""

import itertools

import numpy as np
import pytest

from repro.algorithms.library import MM_INPLACE, MM_SCAN, STRASSEN
from repro.analysis.adaptivity import worst_case_ratio
from repro.analysis.recurrence import expected_cost_ratio, solve_recurrence
from repro.analysis.smoothing import shuffled_worst_case_trials
from repro.profiles.distributions import Empirical, ParetoPowers, UniformPowers
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.runner import run_repeated
from repro.simulation.symbolic import SymbolicSimulator


class TestTheorem2Gap:
    """c = 1, a > b: the adversary extracts exactly log_b(n) + 1."""

    def test_gap_is_exactly_logarithmic(self):
        for k in range(2, 8):
            assert worst_case_ratio(MM_SCAN, 4**k) == pytest.approx(k + 1)

    def test_gap_realized_by_simulation(self):
        n = 4**5
        profile = worst_case_profile(8, 4, n)
        rec = SymbolicSimulator(MM_SCAN, n).run(profile)
        assert rec.completed
        assert rec.adaptivity_ratio == pytest.approx(6.0)

    def test_strassen_also_in_gap(self):
        n = 4**4
        profile = worst_case_profile(7, 4, n)
        rec = SymbolicSimulator(STRASSEN, n).run(profile)
        assert rec.completed
        # ratio = sum over levels of a^(D-k) (b^k)^e / n^e with e=log_4 7:
        # every level contributes n^e exactly, so again D+1
        assert rec.adaptivity_ratio == pytest.approx(5.0)


class TestSection3Separation:
    """MM-SCAN does 1 multiply; MM-INPLACE does log_4(n)+1 on M(n)."""

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_counts(self, k):
        profile = worst_case_profile(8, 4, 4**k)
        assert run_repeated(MM_SCAN, 4**k, profile).completions == 1
        assert run_repeated(MM_INPLACE, 4**k, profile).completions == k + 1


class TestTheorem1:
    """i.i.d. boxes from any Sigma: expected ratio O(1)."""

    @pytest.mark.parametrize(
        "dist",
        [
            UniformPowers(4, 1, 5),
            ParetoPowers(4, 1, 5, alpha=0.5),
        ],
        ids=["uniform", "pareto"],
    )
    def test_expected_ratio_converges(self, dist):
        ratios = [expected_cost_ratio(MM_SCAN, 4**k, dist) for k in range(5, 11)]
        # increments decay: bounded limit, not logarithmic growth
        inc = np.diff(ratios)
        assert inc[-1] < 0.3 * max(inc[0], 1e-9) + 1e-6
        assert ratios[-1] < 5.0

    def test_adversarial_multiset_becomes_adaptive(self):
        n = 4**4
        profile = worst_case_profile(8, 4, n)
        dist = Empirical.of_profile(profile)
        # the same boxes in adversarial order cost k+1 = 5; i.i.d. they
        # cost a constant independent of n
        iid = expected_cost_ratio(MM_SCAN, n, dist)
        assert iid < 0.6 * worst_case_ratio(MM_SCAN, n)

    def test_shuffled_profile_monte_carlo(self):
        n = 4**4
        ratios = shuffled_worst_case_trials(MM_SCAN, n, trials=10, rng=0)
        assert ratios.mean() < 0.6 * worst_case_ratio(MM_SCAN, n)


class TestLemma3Exactness:
    """The recurrence is exact: solver == brute-force simulation."""

    def test_f_matches_simulation_mean(self):
        from repro.simulation.montecarlo import estimate, sample_boxes_to_complete

        dist = UniformPowers(4, 1, 5)
        n = 4**4
        sol = solve_recurrence(MM_SCAN, n, dist)
        mc = estimate(
            lambda g: sample_boxes_to_complete(MM_SCAN, n, dist, g),
            trials=800,
            rng=0,
        )
        assert abs(mc.mean - sol.f) < 4 * mc.ci_halfwidth


class TestOptionalStopping:
    """Equation 3: E[cost] = f(n) * m_n exactly (Wald over the stopped sum)."""

    def test_identity_via_simulation(self):
        from repro.util.rng import spawn

        dist = UniformPowers(4, 1, 4)
        n = 4**3
        e = MM_SCAN.exponent
        costs = []
        counts = []
        for gen in spawn(11, 600):
            sim = SymbolicSimulator(MM_SCAN, n)
            rec = sim.run_to_completion(dist.sampler(gen))
            costs.append(rec.bounded_potential)
            counts.append(rec.boxes_used)
        lhs = np.mean(costs)
        rhs = np.mean(counts) * dist.bounded_potential_moment(n, e)
        assert lhs == pytest.approx(rhs, rel=0.05)


class TestRobustnessDirections:
    """The weak smoothings stay log-ish; full shuffling collapses."""

    def test_ordering_is_everything(self):
        # identical multisets, opposite outcomes
        n = 4**5
        adversarial = worst_case_ratio(MM_SCAN, n)
        shuffled = shuffled_worst_case_trials(MM_SCAN, n, trials=6, rng=1).mean()
        assert adversarial / shuffled > 2.0
