"""Unit tests for the trace-machine bench suite (repro.machine.bench)."""

import json

from repro.cli import main
from repro.machine.bench import (
    MACHINE_BENCH_SCHEMA_VERSION,
    MACHINE_BENCHMARK_NAME,
    run_machine_bench,
)


class TestRunMachineBench:
    def test_quick_payload_shape_and_identity(self):
        payload = run_machine_bench(quick=True, seed=0)
        assert payload["bench_schema_version"] == MACHINE_BENCH_SCHEMA_VERSION
        assert payload["benchmark"] == MACHINE_BENCHMARK_NAME
        assert payload["quick"] is True
        names = [w["name"] for w in payload["workloads"]]
        assert names == [
            "multiprofile-lru-crosscheck",
            "realistic-squarified",
            "dam-capacity-sweep",
        ]
        # the speedup is only evidence because the results are identical
        assert payload["bit_identical"] is True
        for workload in payload["workloads"]:
            assert workload["bit_identical"] is True
            assert workload["scalar_wall_time_s"] > 0
            assert workload["chunked_wall_time_s"] > 0
            assert workload["references"] > 0
        # top-level speedup = the weakest workload, not the flattering one
        per_workload = [w["speedup"] for w in payload["workloads"]]
        assert payload["speedup"] == min(per_workload)

    def test_payload_is_json_serializable_and_tagged(self):
        payload = run_machine_bench(quick=True, seed=3)
        text = json.dumps(payload)
        assert "environment" in payload and "git_revision" in payload
        assert json.loads(text)["seed"] == 3


class TestCliSuite:
    def test_bench_suite_machine_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_machine.json"
        code = main(["bench", "--suite", "machine", "-o", str(out)])
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["benchmark"] == MACHINE_BENCHMARK_NAME
        captured = capsys.readouterr().out
        assert "machine bench:" in captured
        assert "kernel" in captured

    def test_bench_suite_machine_history_appends(self, tmp_path, capsys):
        out = tmp_path / "BENCH_machine.json"
        args = ["bench", "--suite", "machine", "-o", str(out), "--history"]
        assert main(args) == 0
        assert main(args) == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["benchmark"] == MACHINE_BENCHMARK_NAME
        assert len(doc["records"]) == 2
        captured = capsys.readouterr().out
        assert "machine-scalar-vs-kernel" in captured
        assert "kernel(s)" in captured
        assert "regression check" in captured

    def test_bench_suite_machine_rejects_ids(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--suite",
                "machine",
                "fig1",
                "-o",
                str(tmp_path / "b.json"),
            ]
        )
        assert code == 2
