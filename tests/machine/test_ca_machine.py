"""Unit tests for the general per-I/O cache-adaptive machine."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.algorithms.traces import Trace
from repro.machine.ca_machine import simulate_ca
from repro.machine.dam import simulate_dam
from repro.profiles.base import MemoryProfile


def _trace(blocks):
    return Trace(np.asarray(blocks, dtype=np.int64), np.empty((0, 2)))


class TestBasics:
    def test_completes_with_ample_profile(self):
        t = _trace([1, 2, 3, 1])
        r = simulate_ca(t, MemoryProfile.constant(4, 10))
        assert r.completed
        assert r.io_count == 3

    def test_profile_exhaustion_stops_run(self):
        t = _trace([1, 2, 3, 4, 5])
        r = simulate_ca(t, MemoryProfile.constant(10, 2))
        assert not r.completed
        assert r.io_count == 2
        assert r.references_completed == 2

    def test_constant_profile_matches_dam(self, rng):
        blocks = rng.integers(0, 15, 300)
        t = _trace(blocks)
        for m in (2, 4, 8):
            dam = simulate_dam(t, m, policy="lru")
            ca = simulate_ca(t, MemoryProfile.constant(m, 10_000), policy="lru")
            assert ca.completed
            assert ca.io_count == dam.io_count

    def test_empty_profile_rejected(self):
        with pytest.raises(MachineError):
            simulate_ca(_trace([1]), MemoryProfile([]))

    def test_empty_trace(self):
        r = simulate_ca(_trace([]), MemoryProfile.constant(2, 2))
        assert r.completed and r.io_count == 0


class TestShrinkingCapacity:
    def test_shrink_forces_eviction(self):
        # capacity drops to 1 after 2 I/Os: working set of 2 starts missing
        t = _trace([1, 2, 1, 2, 1, 2])
        profile = MemoryProfile([2, 2, 1, 1, 1, 1, 1, 1])
        r = simulate_ca(t, profile, policy="lru")
        # I/O 0: miss 1; I/O 1: miss 2; then capacity 1 -> alternating misses
        assert r.io_count > 2

    def test_generous_profile_beats_stingy(self, rng):
        blocks = rng.integers(0, 10, 200)
        t = _trace(blocks)
        rich = simulate_ca(t, MemoryProfile.constant(10, 1000))
        poor = simulate_ca(t, MemoryProfile.constant(2, 1000))
        assert rich.io_count <= poor.io_count

    def test_miss_rate(self):
        t = _trace([1, 1, 2, 2])
        r = simulate_ca(t, MemoryProfile.constant(4, 10))
        assert r.miss_rate == pytest.approx(0.5)


class TestPolicies:
    def test_opt_not_worse(self, rng):
        blocks = rng.integers(0, 12, 300)
        t = _trace(blocks)
        profile = MemoryProfile.constant(4, 10_000)
        opt = simulate_ca(t, profile, policy="opt")
        lru = simulate_ca(t, profile, policy="lru")
        assert opt.io_count <= lru.io_count
