"""Unit tests for the fixed-memory DAM simulator."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.algorithms.traces import Trace
from repro.machine.dam import simulate_dam


def _trace(blocks):
    return Trace(np.asarray(blocks, dtype=np.int64), np.empty((0, 2)))


class TestBasics:
    def test_cold_misses_only(self):
        t = _trace([1, 2, 3, 1, 2, 3])
        r = simulate_dam(t, cache_size=3)
        assert r.io_count == 3

    def test_thrash_with_tiny_cache(self):
        t = _trace([1, 2, 1, 2, 1, 2])
        r = simulate_dam(t, cache_size=1)
        assert r.io_count == 6

    def test_single_block(self):
        t = _trace([7] * 10)
        assert simulate_dam(t, cache_size=1).io_count == 1

    def test_miss_rate(self):
        t = _trace([1, 1, 1, 1])
        assert simulate_dam(t, 1).miss_rate == pytest.approx(0.25)

    def test_rejects_zero_cache(self):
        with pytest.raises(MachineError):
            simulate_dam(_trace([1]), 0)

    def test_empty_trace(self):
        r = simulate_dam(_trace([]), 4)
        assert r.io_count == 0 and r.miss_rate == 0.0


class TestPolicies:
    def test_opt_at_least_as_good_as_lru(self, rng):
        blocks = rng.integers(0, 20, 500)
        t = _trace(blocks)
        for m in (2, 5, 10):
            opt = simulate_dam(t, m, policy="opt").io_count
            lru = simulate_dam(t, m, policy="lru").io_count
            fifo = simulate_dam(t, m, policy="fifo").io_count
            assert opt <= lru
            assert opt <= fifo

    def test_lru_sequential_scan_worst_case(self):
        # cyclic scan of m+1 blocks through an m-cache: LRU misses always
        t = _trace(list(range(4)) * 5)
        r = simulate_dam(t, cache_size=3, policy="lru")
        assert r.io_count == 20

    def test_monotone_in_cache_size_for_lru(self, rng):
        # LRU is a stack algorithm: misses never increase with more cache
        blocks = rng.integers(0, 30, 400)
        t = _trace(blocks)
        ios = [simulate_dam(t, m, policy="lru").io_count for m in (2, 4, 8, 16, 32)]
        assert ios == sorted(ios, reverse=True)

    def test_io_lower_bound_distinct(self, rng):
        blocks = rng.integers(0, 12, 200)
        t = _trace(blocks)
        r = simulate_dam(t, 100, policy="lru")
        assert r.io_count == t.distinct_blocks()
