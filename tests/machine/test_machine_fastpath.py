"""Tests for the trace-machine fast path: the stack-distance kernel, the
per-trace distance cache, and the differential sweep pinning the LRU
evaluators bit-identical to the scalar machines."""

import gc
from collections import OrderedDict

import numpy as np
import pytest

from repro.errors import MachineError
from repro.algorithms.library import MERGE_SORT, MM_SCAN
from repro.algorithms.scan_hiding import transform as scan_hiding_transform
from repro.algorithms.traces import Trace, synthetic_trace
from repro.machine.ca_machine import simulate_ca
from repro.machine.dam import simulate_dam
from repro.machine.fastpath import (
    COLD,
    distance_cache_clear,
    distance_cache_size,
    eval_lru_fixed,
    is_exact,
    lru_thresholds,
    stack_distances,
    trace_distances,
)
from repro.profiles.base import MemoryProfile
from repro.profiles.generators import (
    random_walk_profile,
    winner_take_all_profile,
)
from repro.profiles.reduction import squarify
from repro.profiles.worst_case import worst_case_profile


def _trace(blocks):
    return Trace(np.asarray(blocks, dtype=np.int64), np.empty((0, 2)))


def _mattson_reference(blocks):
    """Textbook O(n^2) LRU stack maintenance."""
    stack = OrderedDict()
    out = []
    for b in blocks:
        if b in stack:
            order = list(stack)
            out.append(len(order) - order.index(b))
            del stack[b]
        else:
            out.append(COLD)
        stack[b] = True
    return np.asarray(out, dtype=np.int64)


class TestStackDistanceKernel:
    def test_textbook_example(self):
        # a b c b a: distances 3 and 5... no — b reuses over {b, c},
        # a reuses over {a, b, c}.
        got = stack_distances(np.asarray([1, 2, 3, 2, 1], dtype=np.int64))
        assert got.tolist() == [COLD, COLD, COLD, 2, 3]

    def test_matches_reference_on_random_traces(self, rng):
        for _ in range(60):
            n = int(rng.integers(0, 300))
            alphabet = int(rng.integers(1, 40))
            blocks = rng.integers(0, alphabet, n).astype(np.int64)
            got = stack_distances(blocks)
            assert np.array_equal(got, _mattson_reference(blocks))

    @pytest.mark.parametrize(
        "blocks",
        [
            [],
            [7],
            [3, 3, 3, 3, 3],
            list(range(64)),  # all cold, power-of-two length
            list(range(65)),  # crosses the padding boundary
            [0, 1] * 50,
        ],
    )
    def test_edge_shapes(self, blocks):
        arr = np.asarray(blocks, dtype=np.int64)
        assert np.array_equal(stack_distances(arr), _mattson_reference(arr))

    def test_cold_sentinel_exceeds_any_capacity(self):
        # The sentinel must stay a miss even for caches far larger than
        # the trace footprint (n + 1 would misclassify those).
        d = stack_distances(np.asarray([1, 2, 3], dtype=np.int64))
        assert eval_lru_fixed(d, 10**12) == 3

    def test_distance_cache_shares_one_array(self):
        distance_cache_clear()
        t = _trace([1, 2, 1, 3, 2])
        d1 = trace_distances(t)
        d2 = trace_distances(t)
        assert d1 is d2
        assert not d1.flags.writeable
        assert distance_cache_size() == 1

    def test_distance_cache_evicts_dead_traces(self):
        distance_cache_clear()
        t = _trace([1, 2, 3])
        trace_distances(t)
        assert distance_cache_size() == 1
        del t
        gc.collect()
        assert distance_cache_size() == 0


class TestThresholds:
    def test_recurrence_against_direct_simulation(self, rng):
        for _ in range(40):
            steps = int(rng.integers(1, 50))
            sizes = rng.integers(1, 20, steps).astype(np.int64)
            got = lru_thresholds(sizes)
            r = 0
            want = [0]
            for t in range(1, steps + 1):
                r = min(r + 1, int(sizes[t - 1]))
                if t < steps:
                    r = min(r, int(sizes[t]))
                want.append(r)
            assert got.tolist() == want


def _profile_families(n_refs, seed):
    """The ISSUE's profile families, as per-I/O step profiles."""
    yield "constant-ample", MemoryProfile.constant(8, n_refs + 1)
    yield "constant-tight", MemoryProfile.constant(2, n_refs + 1)
    wc = worst_case_profile(8, 4, 64).boxes
    reps = -(-n_refs // int(wc.sum())) + 1
    yield "worst-case", MemoryProfile(np.tile(np.repeat(wc, wc), reps))
    sq = squarify(winner_take_all_profile(32, 2, 8)).boxes
    reps = -(-n_refs // int(sq.sum())) + 1
    yield "square", MemoryProfile(np.tile(np.repeat(sq, sq), reps))
    yield "perturbed", random_walk_profile(
        start=8,
        steps=n_refs + 1,
        min_size=1,
        max_size=64,
        up_probability=0.55,
        crash_probability=0.01,
        crash_factor=0.5,
        rng=seed,
    )
    # Early exhaustion: profiles far shorter than the trace.
    yield "exhaust-1", MemoryProfile([3])
    yield "exhaust-short", MemoryProfile.constant(4, max(1, n_refs // 7))
    yield "exhaust-shrink", MemoryProfile(
        np.maximum(np.arange(max(2, n_refs // 5), 0, -1), 1)
    )


def _trace_shapes(rng):
    """The ISSUE's trace shapes: mm, sorting, scan hiding, randomized."""
    yield "mm", synthetic_trace(MM_SCAN, 64)
    yield "sorting", synthetic_trace(MERGE_SORT, 64)
    yield "scan-hiding", synthetic_trace(scan_hiding_transform(MM_SCAN), 64)
    yield "randomized", _trace(rng.integers(0, 24, 700))


class TestDifferentialSweep:
    def test_lru_fastpath_bit_identical_across_sweep(self, rng):
        for _tname, trace in _trace_shapes(rng):
            for _pname, profile in _profile_families(len(trace), seed=7):
                fast = simulate_ca(trace, profile, "lru", fastpath=True)
                slow = simulate_ca(trace, profile, "lru", fastpath=False)
                auto = simulate_ca(trace, profile, "lru")
                assert fast == slow == auto, (_tname, _pname)

    def test_non_stack_policies_identical_under_auto(self, rng):
        # FIFO/OPT have no kernel: auto must give exactly the scalar run.
        for _tname, trace in _trace_shapes(rng):
            for policy in ("fifo", "opt"):
                for _pname, profile in [
                    ("constant", MemoryProfile.constant(6, len(trace) + 1)),
                    ("exhaust", MemoryProfile.constant(6, len(trace) // 9 + 1)),
                ]:
                    auto = simulate_ca(trace, profile, policy)
                    slow = simulate_ca(trace, profile, policy, fastpath=False)
                    assert auto == slow, (_tname, policy, _pname)

    def test_dam_fastpath_bit_identical(self, rng):
        for _tname, trace in _trace_shapes(rng):
            for m in (1, 2, 3, 8, 64, 10**6):
                fast = simulate_dam(trace, m, "lru", fastpath=True)
                slow = simulate_dam(trace, m, "lru", fastpath=False)
                auto = simulate_dam(trace, m, "lru")
                assert fast == slow == auto, (_tname, m)

    def test_random_traces_random_profiles(self, rng):
        for _ in range(120):
            n = int(rng.integers(1, 120))
            blocks = rng.integers(0, int(rng.integers(1, 30)), n)
            trace = _trace(blocks)
            steps = int(rng.integers(1, 2 * n + 2))
            profile = MemoryProfile(rng.integers(1, 30, steps))
            fast = simulate_ca(trace, profile, "lru", fastpath=True)
            slow = simulate_ca(trace, profile, "lru", fastpath=False)
            assert fast == slow


class TestSelection:
    def test_is_exact_only_for_lru(self):
        assert is_exact("lru") and is_exact("LRU")
        assert not is_exact("fifo") and not is_exact("opt")

    def test_force_fastpath_rejects_non_stack_policies(self):
        t = _trace([1, 2, 3])
        profile = MemoryProfile.constant(2, 10)
        for policy in ("fifo", "opt"):
            with pytest.raises(MachineError):
                simulate_ca(t, profile, policy, fastpath=True)
            with pytest.raises(MachineError):
                simulate_dam(t, 2, policy, fastpath=True)

    def test_fallback_leaves_scalar_path_untouched(self, monkeypatch):
        # The silent FIFO/OPT fallback must not even consult the kernel.
        import repro.machine.fastpath as fp

        def boom(_trace):
            raise AssertionError("kernel touched on a non-stack policy")

        monkeypatch.setattr(fp, "trace_distances", boom)
        t = _trace([1, 2, 1, 3, 2, 1])
        r = simulate_ca(t, MemoryProfile.constant(2, 100), "fifo")
        assert r.completed
        d = simulate_dam(t, 2, "opt")
        assert d.io_count > 0

    def test_force_scalar_for_lru(self, monkeypatch):
        import repro.machine.fastpath as fp

        def boom(_trace):
            raise AssertionError("kernel touched with fastpath=False")

        monkeypatch.setattr(fp, "trace_distances", boom)
        t = _trace([1, 2, 1])
        r = simulate_ca(t, MemoryProfile.constant(2, 10), "lru", fastpath=False)
        assert r.completed

    def test_policy_string_case_preserved(self):
        t = _trace([1, 2, 1])
        r = simulate_ca(t, MemoryProfile.constant(2, 10), "LRU")
        assert r.policy == "LRU"


class TestZeroCapacityBugfix:
    def test_malformed_profile_raises_machine_error(self):
        # MemoryProfile validates sizes >= 1, so forge one that bypasses
        # validation the way a corrupted deserialization would; the old
        # evict-down loop died with a KeyError from inside the policy.
        profile = MemoryProfile.constant(2, 4)
        forged = MemoryProfile.__new__(MemoryProfile)
        sizes = np.asarray([2, 0, 2, 2], dtype=np.int64)
        forged._sizes = sizes
        t = _trace([1, 2, 3, 4, 5])
        with pytest.raises(MachineError, match="must be >= 1"):
            simulate_ca(t, forged, "lru", fastpath=False)
        with pytest.raises(MachineError, match="must be >= 1"):
            simulate_ca(t, forged, "lru")
        # sane profiles still work
        assert simulate_ca(t, profile, "lru").io_count > 0

    def test_empty_trace_fastpath(self):
        r = simulate_ca(_trace([]), MemoryProfile.constant(2, 2), "lru")
        assert r.completed and r.io_count == 0

    def test_profile_exhaustion_mid_run_matches_scalar(self):
        # the terminal epoch: the next miss is unpayable; the run stops
        # at the exact reference index the scalar machine stops at.
        t = _trace([1, 2, 3, 1, 2, 3, 4])
        profile = MemoryProfile([2, 2, 2])
        fast = simulate_ca(t, profile, "lru", fastpath=True)
        slow = simulate_ca(t, profile, "lru", fastpath=False)
        assert fast == slow
        assert not fast.completed
        assert fast.io_count == 3
