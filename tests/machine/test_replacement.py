"""Unit tests for replacement policies."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.replacement import FIFO, LRU, OPT, make_policy, next_occurrences


class TestLRU:
    def test_hit_miss(self):
        p = LRU()
        assert not p.access(1, 0)
        p.admit(1, 0)
        assert p.access(1, 1)

    def test_eviction_order(self):
        p = LRU()
        for t, b in enumerate([1, 2, 3]):
            p.admit(b, t)
        p.access(1, 3)  # 1 becomes most recent
        assert p.evict_one() == 2

    def test_reset(self):
        p = LRU()
        p.admit(1, 0)
        p.reset()
        assert p.resident() == 0

    def test_evict_empty(self):
        with pytest.raises(MachineError):
            LRU().evict_one()


class TestFIFO:
    def test_eviction_order_ignores_recency(self):
        p = FIFO()
        for t, b in enumerate([1, 2, 3]):
            p.admit(b, t)
        p.access(1, 3)
        assert p.evict_one() == 1

    def test_contains(self):
        p = FIFO()
        p.admit(5, 0)
        assert p.contains(5) and not p.contains(6)

    def test_evict_empty(self):
        with pytest.raises(MachineError):
            FIFO().evict_one()


class TestNextOccurrences:
    def test_basic(self):
        blocks = np.array([1, 2, 1, 3, 2])
        nxt = next_occurrences(blocks)
        assert nxt.tolist() == [2, 4, 5, 5, 5]

    def test_empty(self):
        assert next_occurrences(np.empty(0, dtype=np.int64)).size == 0


class TestOPT:
    def test_evicts_farthest_future(self):
        blocks = np.array([1, 2, 3, 1, 2, 3])
        p = OPT(blocks)
        p.admit(1, 0)
        p.admit(2, 1)
        p.admit(3, 2)
        # next uses: 1 -> 3, 2 -> 4, 3 -> 5; evict 3
        assert p.evict_one() == 3

    def test_hit_updates_next_use(self):
        blocks = np.array([1, 2, 1, 2])
        p = OPT(blocks)
        p.admit(1, 0)
        p.admit(2, 1)
        assert p.access(1, 2)  # 1's next use becomes len (never)
        assert p.evict_one() == 1

    def test_never_used_again_evicted_first(self):
        blocks = np.array([9, 1, 1, 1])
        p = OPT(blocks)
        p.admit(9, 0)
        p.admit(1, 1)
        assert p.evict_one() == 9

    def test_evict_empty(self):
        with pytest.raises(MachineError):
            OPT(np.array([1])).evict_one()


class TestMakePolicy:
    def test_lookup(self):
        assert isinstance(make_policy("lru"), LRU)
        assert isinstance(make_policy("FIFO"), FIFO)
        assert isinstance(make_policy("opt", np.array([1])), OPT)

    def test_opt_requires_blocks(self):
        with pytest.raises(MachineError):
            make_policy("opt")

    def test_unknown(self):
        with pytest.raises(MachineError):
            make_policy("random")
