"""Unit tests for the square-profile trace machine."""

import itertools

import numpy as np
import pytest

from repro.errors import MachineError
from repro.algorithms.traces import Trace, synthetic_trace
from repro.algorithms.library import MM_SCAN
from repro.machine.square_machine import last_occurrence, run_trace_on_boxes
from repro.profiles.square import SquareProfile
from repro.profiles.worst_case import worst_case_profile


def _trace(blocks, spans=None):
    spans = np.empty((0, 2)) if spans is None else np.asarray(spans)
    return Trace(np.asarray(blocks, dtype=np.int64), spans)


class TestLastOccurrence:
    def test_basic(self):
        assert last_occurrence(np.array([1, 2, 1, 1, 2])).tolist() == [-1, -1, 0, 2, 1]

    def test_all_distinct(self):
        assert last_occurrence(np.arange(5)).tolist() == [-1] * 5

    def test_empty(self):
        assert last_occurrence(np.empty(0, dtype=np.int64)).size == 0


class TestBoxSemantics:
    def test_box_admits_exactly_x_distinct(self):
        # blocks 0..5 all distinct: a box of size 3 covers refs [0, 3)
        t = _trace([0, 1, 2, 3, 4, 5])
        rec = run_trace_on_boxes(t, [3, 3])
        assert rec.box_ends.tolist() == [3, 6]
        assert rec.completed

    def test_repeats_are_free(self):
        t = _trace([0, 1, 0, 1, 0, 2])
        rec = run_trace_on_boxes(t, [2, 1])
        # box of 2 distinct covers [0, 5): the repeats of 0/1 are hits
        assert rec.box_ends.tolist() == [5, 6]

    def test_cache_cleared_between_boxes(self):
        t = _trace([0, 1, 0, 1])
        rec = run_trace_on_boxes(t, [2, 2])
        assert rec.box_ends.tolist() == [4]  # single box suffices

        rec2 = run_trace_on_boxes(t, [1, 1, 1, 1])
        # size-1 boxes: each new distinct since the box start ends it
        assert rec2.box_ends.tolist() == [1, 2, 3, 4]

    def test_final_box_partial(self):
        t = _trace([0, 1])
        rec = run_trace_on_boxes(t, [100])
        assert rec.completed and rec.boxes_used == 1
        assert rec.box_sizes.tolist() == [100]

    def test_profile_exhausted(self):
        t = _trace([0, 1, 2, 3])
        rec = run_trace_on_boxes(t, SquareProfile([1, 1]))
        assert not rec.completed
        assert rec.box_ends.tolist() == [1, 2]

    def test_max_boxes(self):
        t = _trace([0, 1, 2, 3])
        rec = run_trace_on_boxes(t, itertools.repeat(1), max_boxes=2)
        assert not rec.completed and rec.boxes_used == 2

    def test_empty_trace(self):
        rec = run_trace_on_boxes(_trace([]), [5])
        assert rec.completed and rec.boxes_used == 0

    def test_rejects_zero_box(self):
        with pytest.raises(MachineError):
            run_trace_on_boxes(_trace([1]), [0])


class TestProgressAccounting:
    def test_leaves_touched(self):
        t = _trace([0, 1, 2, 3], spans=[[0, 2], [2, 4]])
        rec = run_trace_on_boxes(t, [2, 2])
        assert rec.leaves_touched_per_box(t).tolist() == [1, 1]

    def test_straddling_leaf_counts_for_both(self):
        t = _trace([0, 1, 2, 3], spans=[[1, 3]])
        rec = run_trace_on_boxes(t, [2, 2])
        assert rec.leaves_touched_per_box(t).tolist() == [1, 1]

    def test_leaves_completed(self):
        t = _trace([0, 1, 2, 3], spans=[[0, 2], [2, 4]])
        rec = run_trace_on_boxes(t, [2, 2])
        assert rec.leaves_completed_per_box(t).tolist() == [1, 1]

    def test_straddling_leaf_completed_by_neither(self):
        t = _trace([0, 1, 2, 3], spans=[[1, 3]])
        rec = run_trace_on_boxes(t, [2, 2])
        assert rec.leaves_completed_per_box(t).tolist() == [0, 0]

    def test_adaptivity_ratio(self):
        t = _trace([0, 1, 2, 3])
        rec = run_trace_on_boxes(t, [2, 100])
        # min(4,2)^1.5 + min(4,100)^1.5 over 4^1.5
        want = (2**1.5 + 4**1.5) / 4**1.5
        assert rec.adaptivity_ratio(4, 1.5) == pytest.approx(want)

    def test_box_spans(self):
        t = _trace([0, 1, 2, 3])
        rec = run_trace_on_boxes(t, [2, 2])
        assert rec.box_spans().tolist() == [[0, 2], [2, 4]]


class TestAgainstSyntheticTraces:
    def test_worst_case_profile_completes_mm_scan_trace(self):
        n = 64
        trace = synthetic_trace(MM_SCAN, n)
        profile = worst_case_profile(8, 4, n)
        rec = run_trace_on_boxes(trace, profile)
        assert rec.completed
        # the trace machine can only be faster than the symbolic model
        # (boxes may cross subproblem boundaries), never slower
        assert rec.boxes_used <= len(profile)

    def test_total_leaves_touched_covers_all(self):
        n = 64
        trace = synthetic_trace(MM_SCAN, n)
        rec = run_trace_on_boxes(trace, itertools.repeat(16))
        touched = rec.leaves_touched_per_box(trace)
        assert rec.completed
        assert touched.sum() >= trace.n_leaves
