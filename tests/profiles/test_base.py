"""Unit tests for step-level memory profiles."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.profiles.base import MemoryProfile


class TestConstruction:
    def test_from_list(self):
        p = MemoryProfile([1, 2, 3])
        assert len(p) == 3
        assert p[1] == 2

    def test_immutable(self):
        p = MemoryProfile([1, 2])
        with pytest.raises(ValueError):
            p.sizes[0] = 5

    def test_rejects_zero(self):
        with pytest.raises(ProfileError):
            MemoryProfile([1, 0])

    def test_rejects_fractional(self):
        with pytest.raises(ProfileError):
            MemoryProfile([1.5])

    def test_accepts_integral_floats(self):
        assert MemoryProfile([2.0, 3.0])[0] == 2

    def test_rejects_2d(self):
        with pytest.raises(ProfileError):
            MemoryProfile(np.ones((2, 2)))

    def test_empty_ok(self):
        assert len(MemoryProfile([])) == 0


class TestProtocol:
    def test_iteration(self):
        assert list(MemoryProfile([3, 1, 4])) == [3, 1, 4]

    def test_slice_returns_profile(self):
        p = MemoryProfile([1, 2, 3, 4])[1:3]
        assert isinstance(p, MemoryProfile)
        assert list(p) == [2, 3]

    def test_equality_and_hash(self):
        a, b = MemoryProfile([1, 2]), MemoryProfile([1, 2])
        assert a == b
        assert hash(a) == hash(b)
        assert a != MemoryProfile([2, 1])

    def test_repr_truncates(self):
        r = repr(MemoryProfile(list(range(1, 20))))
        assert "steps=19" in r and "..." in r


class TestOperations:
    def test_concat(self):
        assert list(MemoryProfile([1]) + MemoryProfile([2])) == [1, 2]

    def test_repeat(self):
        assert list(MemoryProfile([1, 2]).repeat(2)) == [1, 2, 1, 2]
        assert len(MemoryProfile([1]).repeat(0)) == 0

    def test_repeat_negative(self):
        with pytest.raises(ProfileError):
            MemoryProfile([1]).repeat(-1)

    def test_cyclic_shift(self):
        assert list(MemoryProfile([1, 2, 3]).cyclic_shift(1)) == [2, 3, 1]
        assert list(MemoryProfile([1, 2, 3]).cyclic_shift(4)) == [2, 3, 1]

    def test_scaled(self):
        assert list(MemoryProfile([1, 2]).scaled(3)) == [3, 6]
        with pytest.raises(ProfileError):
            MemoryProfile([1]).scaled(0)

    def test_min_max(self):
        p = MemoryProfile([3, 1, 4])
        assert p.min_size() == 1 and p.max_size() == 4

    def test_min_of_empty_raises(self):
        with pytest.raises(ProfileError):
            MemoryProfile([]).min_size()


class TestConstructors:
    def test_constant(self):
        p = MemoryProfile.constant(5, 3)
        assert list(p) == [5, 5, 5]

    def test_constant_invalid(self):
        with pytest.raises(ProfileError):
            MemoryProfile.constant(0, 3)
        with pytest.raises(ProfileError):
            MemoryProfile.constant(1, -1)

    def test_from_steps_and_run_lengths_roundtrip(self):
        steps = [(4, 3), (2, 2), (4, 1)]
        p = MemoryProfile.from_steps(steps)
        assert p.run_lengths() == steps

    def test_run_lengths_empty(self):
        assert MemoryProfile([]).run_lengths() == []

    def test_duration(self):
        assert MemoryProfile.from_steps([(2, 5)]).duration == 5
