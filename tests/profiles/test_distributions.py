"""Unit tests for box-size distributions and their exact moments."""

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.profiles.distributions import (
    BoxDistribution,
    Empirical,
    GeometricPowers,
    Mixture,
    ParetoPowers,
    PointMass,
    UniformPowers,
    UniformRange,
)
from repro.profiles.square import SquareProfile


class TestBase:
    def test_normalizes_probabilities(self):
        d = BoxDistribution([1, 2], [2.0, 2.0])
        assert d.probabilities.sum() == pytest.approx(1.0)

    def test_merges_duplicates(self):
        d = BoxDistribution([2, 2, 3], [0.25, 0.25, 0.5])
        assert list(d.support) == [2, 3]
        assert d.probabilities[0] == pytest.approx(0.5)

    def test_drops_zero_probability_atoms(self):
        d = BoxDistribution([1, 2, 3], [0.5, 0.0, 0.5])
        assert list(d.support) == [1, 3]

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            BoxDistribution([], [])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(DistributionError):
            BoxDistribution([0], [1.0])

    def test_rejects_negative_probs(self):
        with pytest.raises(DistributionError):
            BoxDistribution([1], [-1.0])

    def test_rejects_mismatched(self):
        with pytest.raises(DistributionError):
            BoxDistribution([1, 2], [1.0])


class TestMoments:
    def test_mean(self):
        d = BoxDistribution([2, 4], [0.5, 0.5])
        assert d.mean() == pytest.approx(3.0)

    def test_tail(self):
        d = BoxDistribution([1, 4, 16], [0.2, 0.3, 0.5])
        assert d.tail(1) == pytest.approx(1.0)
        assert d.tail(2) == pytest.approx(0.8)
        assert d.tail(4) == pytest.approx(0.8)
        assert d.tail(5) == pytest.approx(0.5)
        assert d.tail(17) == pytest.approx(0.0)

    def test_expected_min(self):
        d = BoxDistribution([2, 10], [0.5, 0.5])
        assert d.expected_min(4) == pytest.approx(0.5 * 2 + 0.5 * 4)
        assert d.expected_min(100) == pytest.approx(6.0)

    def test_bounded_potential_moment(self):
        d = BoxDistribution([4, 100], [0.5, 0.5])
        m = d.bounded_potential_moment(16, 1.5)
        assert m == pytest.approx(0.5 * 4**1.5 + 0.5 * 16**1.5)

    def test_moment(self):
        d = PointMass(9)
        assert d.moment(0.5) == pytest.approx(3.0)

    def test_invalid_args(self):
        d = PointMass(4)
        with pytest.raises(DistributionError):
            d.expected_min(0)
        with pytest.raises(DistributionError):
            d.bounded_potential_moment(0, 1.0)
        with pytest.raises(DistributionError):
            d.bounded_potential_moment(4, -1.0)


class TestSampling:
    def test_sample_matches_support(self, rng):
        d = UniformPowers(4, 1, 3)
        samples = d.sample(1000, rng)
        assert set(np.unique(samples)) <= {4, 16, 64}

    def test_sample_frequencies(self, rng):
        d = BoxDistribution([1, 2], [0.9, 0.1])
        samples = d.sample(20000, rng)
        assert (samples == 1).mean() == pytest.approx(0.9, abs=0.02)

    def test_sampler_infinite(self, rng):
        it = PointMass(7).sampler(rng)
        assert [next(it) for _ in range(5)] == [7] * 5

    def test_sample_profile(self, rng):
        p = PointMass(3).sample_profile(4, rng)
        assert isinstance(p, SquareProfile)
        assert list(p) == [3, 3, 3, 3]

    def test_sample_deterministic_by_seed(self):
        d = UniformPowers(2, 0, 8)
        assert np.array_equal(d.sample(32, 5), d.sample(32, 5))

    def test_negative_k(self):
        with pytest.raises(DistributionError):
            PointMass(1).sample(-1)


class TestConcreteDistributions:
    def test_point_mass(self):
        d = PointMass(16)
        assert d.min_size == d.max_size == 16
        assert d.mean() == 16

    def test_uniform_powers(self):
        d = UniformPowers(4, 1, 3)
        assert list(d.support) == [4, 16, 64]
        assert np.allclose(d.probabilities, 1 / 3)

    def test_uniform_powers_invalid(self):
        with pytest.raises(DistributionError):
            UniformPowers(4, 3, 1)

    def test_geometric_powers_bias(self):
        small_biased = GeometricPowers(4, 1, 3, ratio=0.5)
        assert small_biased.probabilities[0] > small_biased.probabilities[-1]
        big_biased = GeometricPowers(4, 1, 3, ratio=2.0)
        assert big_biased.probabilities[0] < big_biased.probabilities[-1]

    def test_pareto_powers_tail_weights(self):
        d = ParetoPowers(4, 1, 3, alpha=0.5)
        # weights proportional to size^-0.5: 1/2, 1/4, 1/8
        assert d.probabilities[0] / d.probabilities[1] == pytest.approx(2.0)

    def test_uniform_range(self):
        d = UniformRange(3, 6)
        assert list(d.support) == [3, 4, 5, 6]
        assert d.mean() == pytest.approx(4.5)

    def test_empirical(self):
        d = Empirical([4, 4, 2])
        assert d.tail(4) == pytest.approx(2 / 3)

    def test_empirical_of_profile(self):
        prof = SquareProfile([1, 1, 8])
        d = Empirical.of_profile(prof)
        assert d.mean() == pytest.approx(10 / 3)

    def test_empirical_empty(self):
        with pytest.raises(DistributionError):
            Empirical([])

    def test_mixture(self):
        m = Mixture([PointMass(2), PointMass(8)], [1.0, 3.0])
        assert m.tail(8) == pytest.approx(0.75)
        assert m.mean() == pytest.approx(0.25 * 2 + 0.75 * 8)

    def test_mixture_invalid(self):
        with pytest.raises(DistributionError):
            Mixture([], [])
        with pytest.raises(DistributionError):
            Mixture([PointMass(1)], [0.0])
