"""Unit tests for realistic profile generators."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.profiles.generators import (
    constant_boxes,
    phase_profile,
    random_walk_profile,
    sawtooth_profile,
    winner_take_all_profile,
)


class TestConstantBoxes:
    def test_shape(self):
        p = constant_boxes(8, 5)
        assert list(p) == [8] * 5


class TestSawtooth:
    def test_ramp_shape(self):
        p = sawtooth_profile(1, 4, teeth=2)
        assert list(p) == [1, 2, 3, 4, 1, 2, 3, 4]

    def test_ramp_rate(self):
        p = sawtooth_profile(1, 5, teeth=1, ramp_rate=2)
        assert list(p) == [1, 3, 5]

    def test_ramp_rate_caps_at_max(self):
        p = sawtooth_profile(1, 4, teeth=1, ramp_rate=2)
        assert list(p) == [1, 3, 4]

    def test_invalid(self):
        with pytest.raises(ProfileError):
            sawtooth_profile(5, 4, 1)
        with pytest.raises(ProfileError):
            sawtooth_profile(1, 4, 0)


class TestWinnerTakeAll:
    def test_crash_to_floor(self):
        p = winner_take_all_profile(8, 2, cycles=2)
        sizes = list(p)
        assert max(sizes) == 8
        assert sizes.count(2) == 2  # one floor start per cycle

    def test_respects_growth_rule(self):
        p = winner_take_all_profile(16, 1, cycles=1)
        diffs = np.diff(p.sizes)
        assert diffs.max() <= 1  # grows at most one block per step


class TestRandomWalk:
    def test_bounds_respected(self, rng):
        p = random_walk_profile(10, 500, min_size=5, max_size=20, rng=rng)
        assert p.min_size() >= 5 and p.max_size() <= 20

    def test_growth_rule(self, rng):
        p = random_walk_profile(10, 500, rng=rng)
        assert np.diff(p.sizes).max() <= 1

    def test_crash_shrinks_fast(self):
        p = random_walk_profile(
            1000, 50, crash_probability=1.0, crash_factor=0.5, rng=1
        )
        assert p.sizes[0] == 500

    def test_deterministic(self):
        a = random_walk_profile(10, 100, rng=7)
        b = random_walk_profile(10, 100, rng=7)
        assert a == b

    def test_invalid_params(self):
        with pytest.raises(ProfileError):
            random_walk_profile(10, -1)
        with pytest.raises(ProfileError):
            random_walk_profile(10, 5, up_probability=2.0)
        with pytest.raises(ProfileError):
            random_walk_profile(10, 5, crash_factor=0.0)
        with pytest.raises(ProfileError):
            random_walk_profile(0, 5)


class TestPhaseProfile:
    def test_phases(self):
        p = phase_profile([(4, 2), (2, 3)])
        assert list(p) == [4, 4, 2, 2, 2]

    def test_empty_rejected(self):
        with pytest.raises(ProfileError):
            phase_profile([])
