"""Unit tests for the distribution mini-DSL."""

import pytest

from repro.errors import DistributionError
from repro.profiles.distributions import (
    Empirical,
    GeometricPowers,
    ParetoPowers,
    PointMass,
    UniformPowers,
    UniformRange,
)
from repro.profiles.parsing import parse_distribution


class TestParsing:
    def test_point(self):
        d = parse_distribution("point:16")
        assert isinstance(d, PointMass)
        assert d.min_size == 16

    def test_uniform(self):
        d = parse_distribution("uniform:4:1:3")
        assert isinstance(d, UniformPowers)
        assert list(d.support) == [4, 16, 64]

    def test_geometric(self):
        d = parse_distribution("geometric:4:1:3:0.5")
        assert isinstance(d, GeometricPowers)
        assert d.probabilities[0] > d.probabilities[-1]

    def test_pareto(self):
        d = parse_distribution("pareto:4:1:3:0.5")
        assert isinstance(d, ParetoPowers)

    def test_range(self):
        d = parse_distribution("range:3:7")
        assert isinstance(d, UniformRange)
        assert d.min_size == 3 and d.max_size == 7

    def test_worstcase(self):
        d = parse_distribution("worstcase:8:4:64")
        assert isinstance(d, Empirical)
        assert d.max_size == 64

    def test_case_insensitive_and_whitespace(self):
        assert isinstance(parse_distribution("  POINT:4 "), PointMass)

    def test_unknown_kind(self):
        with pytest.raises(DistributionError):
            parse_distribution("zipf:2:1:4")

    def test_wrong_arity(self):
        with pytest.raises(DistributionError):
            parse_distribution("point:1:2")
        with pytest.raises(DistributionError):
            parse_distribution("uniform:4:1")
        with pytest.raises(DistributionError):
            parse_distribution("geometric:4:1:3")

    def test_bad_numbers(self):
        with pytest.raises(DistributionError):
            parse_distribution("point:abc")
        with pytest.raises(DistributionError):
            parse_distribution("pareto:4:1:3:xyz")


class TestCliSolve:
    def test_solve_command(self, capsys):
        from repro.cli import main

        assert main(["solve", "--spec", "MM-SCAN", "--n", "64",
                     "--dist", "uniform:4:1:3"]) == 0
        out = capsys.readouterr().out
        assert "f(n)" in out and "Eq-8" in out

    def test_solve_bad_dist(self, capsys):
        from repro.cli import main

        assert main(["solve", "--n", "64", "--dist", "nope:1"]) == 2
