"""Unit tests for smoothing perturbations."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.profiles.perturbations import (
    discrete_multipliers,
    random_start_shift,
    shuffle,
    size_perturbation,
    start_time_shift,
    uniform_multipliers,
)
from repro.profiles.square import SquareProfile


class TestMultiplierSamplers:
    def test_uniform_range_and_mean(self, rng):
        sample = uniform_multipliers(4.0)(10000, rng)
        assert sample.min() >= 0.0 and sample.max() <= 4.0
        assert sample.mean() == pytest.approx(2.0, abs=0.1)

    def test_uniform_rejects_nonpositive(self):
        with pytest.raises(ProfileError):
            uniform_multipliers(0.0)

    def test_discrete_values(self, rng):
        sample = discrete_multipliers([1.0, 2.0])(1000, rng)
        assert set(np.unique(sample)) <= {1.0, 2.0}

    def test_discrete_weights(self, rng):
        sample = discrete_multipliers([0.0, 1.0], [0.25, 0.75])(20000, rng)
        assert (sample == 1.0).mean() == pytest.approx(0.75, abs=0.02)

    def test_discrete_rejects_negative(self):
        with pytest.raises(ProfileError):
            discrete_multipliers([-1.0])


class TestSizePerturbation:
    def test_identity_multiplier(self, rng):
        p = SquareProfile([2, 4, 8])
        out = size_perturbation(p, discrete_multipliers([1.0]), rng)
        assert out == p

    def test_doubling(self, rng):
        p = SquareProfile([2, 4])
        out = size_perturbation(p, discrete_multipliers([2.0]), rng)
        assert list(out) == [4, 8]

    def test_drop_empty(self, rng):
        p = SquareProfile([1, 100])
        out = size_perturbation(p, discrete_multipliers([0.0]), rng, drop_empty=True)
        assert len(out) == 0

    def test_clamp_when_not_dropping(self, rng):
        p = SquareProfile([1, 100])
        out = size_perturbation(p, discrete_multipliers([0.0]), rng, drop_empty=False)
        assert list(out) == [1, 1]

    def test_deterministic_with_seed(self):
        p = SquareProfile([3] * 50)
        a = size_perturbation(p, uniform_multipliers(2.0), rng=9)
        b = size_perturbation(p, uniform_multipliers(2.0), rng=9)
        assert a == b


class TestStartTimeShift:
    def test_zero_shift_is_identity(self):
        p = SquareProfile([2, 3, 4])
        assert start_time_shift(p, 0) == p

    def test_boundary_shift_rotates(self):
        p = SquareProfile([2, 3, 4])
        assert list(start_time_shift(p, 2)) == [3, 4, 2]

    def test_mid_box_shrink(self):
        p = SquareProfile([4, 3])
        # tau = 1 lands inside the first box: 3 steps remain at the start
        # of the period, 1 step of the same box closes it
        assert list(start_time_shift(p, 1, partial="shrink")) == [3, 3, 1]

    def test_mid_box_skip(self):
        p = SquareProfile([4, 3])
        # the split box is dropped entirely in skip mode
        assert list(start_time_shift(p, 1, partial="skip")) == [3]

    def test_wraps_modulo_total(self):
        p = SquareProfile([2, 3])
        assert start_time_shift(p, 5) == start_time_shift(p, 0)

    def test_preserves_total_time_always(self):
        p = SquareProfile([2, 3, 4])
        for tau in range(p.total_time):
            assert start_time_shift(p, tau).total_time == p.total_time

    def test_invalid_mode(self):
        with pytest.raises(ProfileError):
            start_time_shift(SquareProfile([1]), 0, partial="weird")

    def test_empty_profile_rejected(self):
        with pytest.raises(ProfileError):
            start_time_shift(SquareProfile([]), 0)

    def test_random_shift_deterministic(self):
        p = SquareProfile([5, 7, 2, 9])
        assert random_start_shift(p, rng=4) == random_start_shift(p, rng=4)


class TestShuffle:
    def test_multiset_preserved(self, rng):
        p = SquareProfile([1, 2, 3, 4, 5])
        out = shuffle(p, rng)
        assert sorted(out.boxes.tolist()) == [1, 2, 3, 4, 5]

    def test_actually_permutes(self):
        p = SquareProfile(list(range(1, 101)))
        out = shuffle(p, rng=0)
        assert out != p

    def test_deterministic_with_seed(self):
        p = SquareProfile(list(range(1, 20)))
        assert shuffle(p, rng=5) == shuffle(p, rng=5)
