"""Unit tests for the arbitrary-profile-to-square-profile reduction."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.profiles.base import MemoryProfile
from repro.profiles.generators import sawtooth_profile, winner_take_all_profile
from repro.profiles.reduction import inscribed_box_at, squarify


class TestInscribedBoxAt:
    def test_flat_profile(self):
        sizes = np.full(10, 4, dtype=np.int64)
        assert inscribed_box_at(sizes, 0) == 4

    def test_limited_by_remaining_time(self):
        sizes = np.full(3, 10, dtype=np.int64)
        assert inscribed_box_at(sizes, 0) == 3
        assert inscribed_box_at(sizes, 2) == 1

    def test_limited_by_dip(self):
        sizes = np.array([5, 5, 1, 5, 5], dtype=np.int64)
        # a box of height >= 3 would cross the dip at index 2
        assert inscribed_box_at(sizes, 0) == 2

    def test_single_step(self):
        assert inscribed_box_at(np.array([7]), 0) == 1

    def test_out_of_range(self):
        with pytest.raises(ProfileError):
            inscribed_box_at(np.array([1]), 1)


class TestSquarify:
    def test_constant_profile(self):
        p = MemoryProfile.constant(4, 12)
        sq = squarify(p)
        assert list(sq) == [4, 4, 4]

    def test_never_exceeds_profile(self):
        p = winner_take_all_profile(32, 1, cycles=3)
        sq = squarify(p)
        sizes = p.sizes
        t = 0
        for box in sq:
            window = sizes[t : t + box]
            assert window.min() >= box  # inscribed: never more memory
            t += box
        assert t == len(p)  # exact tiling of the time axis

    def test_sawtooth(self):
        p = sawtooth_profile(1, 4, teeth=1)  # [1,2,3,4]
        sq = squarify(p)
        assert sq.total_time == len(p)
        assert list(sq)[0] == 1

    def test_greedy_from_offset(self):
        p = MemoryProfile.constant(4, 8)
        sq = squarify(p, greedy_from=4)
        assert sq.total_time == 4

    def test_greedy_from_end(self):
        p = MemoryProfile.constant(4, 4)
        assert len(squarify(p, greedy_from=4)) == 0

    def test_invalid_offset(self):
        with pytest.raises(ProfileError):
            squarify(MemoryProfile([1]), greedy_from=5)

    def test_boxes_are_maximal(self):
        # each box could not have been one larger
        p = winner_take_all_profile(16, 2, cycles=2)
        sizes = p.sizes
        sq = squarify(p)
        t = 0
        for box in sq:
            if t + box < len(p):  # not truncated by the profile end
                grown = sizes[t : t + box + 1]
                assert grown.min() < box + 1
            t += box
