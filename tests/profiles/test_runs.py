"""Unit tests for run-length box streams (repro.profiles.runs)."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.profiles import (
    BoxRuns,
    SquareProfile,
    constant_boxes,
    phase_profile,
    random_walk_profile,
    sawtooth_profile,
    squarify,
    winner_take_all_profile,
    worst_case_profile,
    worst_case_runs,
)


class TestConstruction:
    def test_adjacent_equal_runs_merge(self):
        runs = BoxRuns([(4, 2), (4, 3), (2, 1)])
        assert list(runs.iter_runs()) == [(4, 5), (2, 1)]
        assert len(runs) == 2
        assert runs.total_boxes == 6

    def test_zero_count_runs_dropped(self):
        runs = BoxRuns([(4, 2), (8, 0), (2, 1)])
        assert list(runs.iter_runs()) == [(4, 2), (2, 1)]

    def test_zero_count_between_equal_sizes_still_merges(self):
        # dropping the empty run makes its neighbours adjacent
        runs = BoxRuns([(4, 2), (8, 0), (4, 3)])
        assert list(runs.iter_runs()) == [(4, 5)]

    def test_empty_runs(self):
        runs = BoxRuns([])
        assert len(runs) == 0
        assert runs.total_boxes == 0
        assert list(runs) == []
        assert runs == BoxRuns.from_boxes([])

    def test_negative_count_rejected(self):
        with pytest.raises(ProfileError):
            BoxRuns([(4, -1)])

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ProfileError):
            BoxRuns([(0, 3)])
        with pytest.raises(ProfileError):
            BoxRuns.from_boxes([1, 0, 1])

    def test_non_integer_rejected(self):
        with pytest.raises(ProfileError):
            BoxRuns([(4.5, 2)])

    def test_arrays_are_read_only(self):
        runs = BoxRuns([(4, 2)])
        with pytest.raises(ValueError):
            runs.sizes[0] = 9
        with pytest.raises(ValueError):
            runs.counts[0] = 9


class TestRoundTrip:
    def test_from_boxes_round_trips(self):
        boxes = [5, 5, 5, 2, 7, 7, 1]
        runs = BoxRuns.from_boxes(boxes)
        assert list(runs.iter_runs()) == [(5, 3), (2, 1), (7, 2), (1, 1)]
        assert list(runs.iter_boxes()) == boxes
        assert np.array_equal(runs.to_boxes(), np.asarray(boxes))

    def test_to_profile_round_trips(self):
        profile = SquareProfile([3, 3, 9, 1, 1, 1])
        assert profile.runs().to_profile() == profile

    def test_equality_is_by_flat_sequence(self):
        assert BoxRuns([(4, 2), (4, 1)]) == BoxRuns([(4, 3)])
        assert BoxRuns([(4, 3)]) != BoxRuns([(4, 2)])
        assert hash(BoxRuns([(4, 2), (4, 1)])) == hash(BoxRuns([(4, 3)]))

    @pytest.mark.parametrize(
        "profile",
        [
            pytest.param(constant_boxes(8, 20), id="constant"),
            pytest.param(worst_case_profile(8, 4, 256), id="worst-case"),
            pytest.param(worst_case_profile(2, 2, 64), id="worst-case-2,2"),
            pytest.param(
                squarify(sawtooth_profile(1, 16, 3)), id="sawtooth"
            ),
            pytest.param(
                squarify(winner_take_all_profile(32, 2, 2)),
                id="winner-take-all",
            ),
            pytest.param(
                squarify(random_walk_profile(8, 200, rng=0)),
                id="random-walk",
            ),
            pytest.param(
                squarify(phase_profile([(16, 64), (2, 10), (8, 24)])),
                id="phase",
            ),
        ],
    )
    def test_rle_round_trip_on_every_profile_family(self, profile):
        runs = profile.runs()
        # the flat sequences match exactly ...
        assert list(runs.iter_boxes()) == list(profile)
        assert runs.to_profile() == profile
        # ... and the encoding is maximal: adjacent runs are distinct
        sizes = runs.sizes
        assert np.all(sizes[1:] != sizes[:-1])
        assert runs.total_boxes == len(profile)
        assert runs.total_time == profile.total_time


class TestWorstCaseRuns:
    @pytest.mark.parametrize(
        "a,b,n", [(8, 4, 1024), (4, 4, 256), (2, 4, 256), (2, 2, 64)]
    )
    def test_matches_profile_rle(self, a, b, n):
        # native emission must be exactly the maximal RLE of M_{a,b}(n)
        native = BoxRuns(worst_case_runs(a, b, n))
        assert native == worst_case_profile(a, b, n).runs()
        # and already maximal as emitted: constructing it merged nothing
        assert list(worst_case_runs(a, b, n)) == list(native.iter_runs())

    def test_run_count_is_far_below_box_count(self):
        runs = BoxRuns(worst_case_runs(8, 4, 4**6))
        assert runs.total_boxes == worst_case_profile(8, 4, 4**6).runs().total_boxes
        # R(D) = a R(D-1) + 1 vs boxes = (a^(D+1)-1)/(a-1): ~4.27x fewer
        assert len(runs) * 4 < runs.total_boxes

    def test_base_size_scales_runs(self):
        scaled = BoxRuns(worst_case_runs(2, 2, 64, base_size=4))
        plain = BoxRuns(worst_case_runs(2, 2, 16))
        assert np.array_equal(scaled.sizes, plain.sizes * 4)
        assert np.array_equal(scaled.counts, plain.counts)
