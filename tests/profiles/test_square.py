"""Unit tests for square profiles and their potential accounting."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.profiles.base import MemoryProfile
from repro.profiles.square import SquareProfile, as_box_iter


class TestConstruction:
    def test_basic(self):
        p = SquareProfile([4, 2, 8])
        assert len(p) == 3
        assert p[2] == 8

    def test_rejects_zero_box(self):
        with pytest.raises(ProfileError):
            SquareProfile([4, 0])

    def test_immutable(self):
        with pytest.raises(ValueError):
            SquareProfile([1]).boxes[0] = 2

    def test_equality(self):
        assert SquareProfile([1, 2]) == SquareProfile([1, 2])
        assert SquareProfile([1, 2]) != SquareProfile([2, 1])

    def test_slice(self):
        assert list(SquareProfile([1, 2, 3])[:2]) == [1, 2]


class TestAlgebra:
    def test_concat(self):
        assert list(SquareProfile([1]) + SquareProfile([2, 3])) == [1, 2, 3]

    def test_repeat(self):
        assert list(SquareProfile([1, 2]).repeat(3)) == [1, 2] * 3

    def test_rotate(self):
        assert list(SquareProfile([1, 2, 3]).rotate(2)) == [3, 1, 2]

    def test_rotate_empty(self):
        assert len(SquareProfile([]).rotate(5)) == 0

    def test_scaled(self):
        assert list(SquareProfile([2, 3]).scaled(4)) == [8, 12]

    def test_filtered_min_size(self):
        assert list(SquareProfile([1, 5, 2, 8]).filtered_min_size(3)) == [5, 8]


class TestAccounting:
    def test_total_time(self):
        assert SquareProfile([3, 4]).total_time == 7

    def test_potential_sum(self):
        p = SquareProfile([4, 4])
        assert p.potential_sum(1.5) == pytest.approx(2 * 8.0)

    def test_potential_sum_with_rho1(self):
        assert SquareProfile([4]).potential_sum(1.0, rho1=2.0) == pytest.approx(8.0)

    def test_bounded_potential_clips(self):
        p = SquareProfile([2, 100])
        # min(4, 2)^1 + min(4, 100)^1 = 2 + 4
        assert p.bounded_potential_sum(4, 1.0) == pytest.approx(6.0)

    def test_bounded_potential_rejects_bad_args(self):
        with pytest.raises(ProfileError):
            SquareProfile([1]).bounded_potential_sum(0, 1.0)
        with pytest.raises(ProfileError):
            SquareProfile([1]).bounded_potential_sum(1, -1.0)

    def test_size_census(self):
        assert SquareProfile([4, 2, 4]).size_census() == {2: 1, 4: 2}


class TestConversions:
    def test_to_memory_profile(self):
        mp = SquareProfile([2, 3]).to_memory_profile()
        assert isinstance(mp, MemoryProfile)
        assert list(mp) == [2, 2, 3, 3, 3]

    def test_to_memory_profile_guards_size(self):
        with pytest.raises(ProfileError):
            SquareProfile([10**9]).to_memory_profile()

    def test_constant(self):
        assert list(SquareProfile.constant(4, 3)) == [4, 4, 4]

    def test_sparkline(self):
        assert len(SquareProfile([1, 2, 3]).sparkline(width=10)) == 3


class TestAsBoxIter:
    def test_profile(self):
        assert list(as_box_iter(SquareProfile([1, 2]))) == [1, 2]

    def test_list(self):
        assert list(as_box_iter([3, 4])) == [3, 4]

    def test_generator(self):
        assert list(as_box_iter(iter([5]))) == [5]

    def test_numpy_values_coerced_to_int(self):
        out = list(as_box_iter(np.array([1, 2], dtype=np.int64)))
        assert all(isinstance(x, int) for x in out)
