"""Unit tests for the worst-case profile construction (Figure 1)."""

import itertools

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.profiles.worst_case import (
    limit_profile_boxes,
    order_perturbed_profile,
    worst_case_bounded_potential,
    worst_case_box_count,
    worst_case_boxes,
    worst_case_potential,
    worst_case_profile,
    worst_case_total_time,
)


class TestConstruction:
    def test_base_case(self):
        assert list(worst_case_profile(8, 4, 1)) == [1]

    def test_one_level(self):
        # 8 copies of M(1) = [1] then a box of size 4
        assert list(worst_case_profile(8, 4, 4)) == [1] * 8 + [4]

    def test_recursive_structure(self):
        m16 = list(worst_case_profile(8, 4, 16))
        m4 = list(worst_case_profile(8, 4, 4))
        assert m16 == m4 * 8 + [16]

    def test_prefix_property(self):
        # M(n) is a prefix of M(n*b)
        m64 = list(worst_case_profile(8, 4, 64))
        m256 = list(worst_case_profile(8, 4, 256))
        assert m256[: len(m64)] == m64

    def test_with_base_size(self):
        p = worst_case_profile(2, 2, 8, base_size=2)
        assert p.min_size() == 2 and p.max_size() == 8

    def test_rejects_bad_n(self):
        with pytest.raises(ProfileError):
            worst_case_profile(8, 4, 10)
        with pytest.raises(ProfileError):
            worst_case_profile(8, 4, 4, base_size=3)

    def test_rejects_huge(self):
        with pytest.raises(ProfileError):
            worst_case_profile(8, 4, 4**12)


class TestClosedForms:
    @pytest.mark.parametrize("a,b,k", [(8, 4, 3), (2, 2, 5), (7, 4, 3), (3, 2, 4)])
    def test_box_count(self, a, b, k):
        n = b**k
        assert len(worst_case_profile(a, b, n)) == worst_case_box_count(a, b, n)

    @pytest.mark.parametrize("a,b,k", [(8, 4, 3), (2, 2, 5), (7, 4, 3)])
    def test_total_time(self, a, b, k):
        n = b**k
        p = worst_case_profile(a, b, n)
        assert p.total_time == worst_case_total_time(a, b, n)

    def test_potential_matches_profile(self):
        p = worst_case_profile(8, 4, 256)
        assert p.potential_sum(1.5) == pytest.approx(worst_case_potential(8, 4, 256))

    def test_potential_log_factor(self):
        # a = b^e exactly: potential = (D+1) n^e
        for k in range(1, 6):
            n = 4**k
            assert worst_case_potential(8, 4, n) == pytest.approx((k + 1) * n**1.5)

    def test_bounded_potential(self):
        p = worst_case_profile(8, 4, 64)
        got = worst_case_bounded_potential(8, 4, 64, bound=16)
        assert got == pytest.approx(p.bounded_potential_sum(16, 1.5))

    def test_box_count_a_equals_one(self):
        assert worst_case_box_count(1, 2, 8) == 4


class TestLazyIterators:
    def test_lazy_matches_explicit(self):
        explicit = list(worst_case_profile(8, 4, 64))
        lazy = list(worst_case_boxes(8, 4, 64))
        assert lazy == explicit

    def test_limit_profile_prefixes(self):
        stream = limit_profile_boxes(8, 4)
        prefix = list(itertools.islice(stream, worst_case_box_count(8, 4, 64)))
        assert prefix == list(worst_case_profile(8, 4, 64))

    def test_limit_profile_with_base(self):
        stream = limit_profile_boxes(2, 2, base_size=4)
        first = list(itertools.islice(stream, 3))
        assert first == [4, 4, 8]


class TestOrderPerturbation:
    def test_canonical_position_recovers_original(self):
        p = order_perturbed_profile(
            8, 4, 64, position_rule=lambda size, path: 8
        )
        assert p == worst_case_profile(8, 4, 64)

    def test_multiset_preserved(self, rng):
        base = worst_case_profile(8, 4, 64)
        pert = order_perturbed_profile(8, 4, 64, rng=rng)
        assert sorted(base.boxes.tolist()) == sorted(pert.boxes.tolist())

    def test_first_position(self):
        p = order_perturbed_profile(2, 2, 4, position_rule=lambda size, path: 1)
        # node 4: copy1(M'(2)), box 4, copy2(M'(2)); M'(2) = [1, 2, 1]
        assert list(p) == [1, 2, 1, 4, 1, 2, 1]

    def test_deterministic_with_seed(self):
        a = order_perturbed_profile(8, 4, 16, rng=3)
        b = order_perturbed_profile(8, 4, 16, rng=3)
        assert a == b

    def test_invalid_position_rejected(self):
        with pytest.raises(ProfileError):
            order_perturbed_profile(2, 2, 4, position_rule=lambda s, p: 0)
        with pytest.raises(ProfileError):
            order_perturbed_profile(2, 2, 4, position_rule=lambda s, p: 3)


class TestMatchedWorstCase:
    def test_end_placement_is_canonical(self):
        from repro.algorithms.library import MM_SCAN
        from repro.profiles.worst_case import matched_worst_case_profile

        assert matched_worst_case_profile(MM_SCAN, 256) == worst_case_profile(
            8, 4, 256
        )

    def test_front_placement_structure(self):
        from repro.algorithms.spec import RegularSpec, ScanPlacement
        from repro.profiles.worst_case import matched_worst_case_profile

        spec = RegularSpec(2, 2, 1.0, scan_placement=ScanPlacement.FRONT)
        # node 4: [scan-box 4] child child; node 2: [scan-box 2] leaf leaf
        assert list(matched_worst_case_profile(spec, 4)) == [
            4, 2, 1, 1, 2, 1, 1
        ]

    def test_split_placement_total_potential(self):
        from repro.algorithms.library import MM_SCAN
        from repro.algorithms.spec import ScanPlacement
        from repro.profiles.worst_case import matched_worst_case_profile

        spec = MM_SCAN.with_placement(ScanPlacement.SPLIT)
        p = matched_worst_case_profile(spec, 64)
        # same total duration as the canonical profile (scans identical)
        assert p.total_time == worst_case_profile(8, 4, 64).total_time

    def test_completes_algorithm_exactly(self):
        from repro.algorithms.library import MM_SCAN
        from repro.algorithms.spec import ScanPlacement
        from repro.simulation.symbolic import SymbolicSimulator
        from repro.profiles.worst_case import matched_worst_case_profile

        for placement in (ScanPlacement.END, ScanPlacement.SPLIT):
            spec = MM_SCAN.with_placement(placement)
            profile = matched_worst_case_profile(spec, 64)
            rec = SymbolicSimulator(spec, 64).run(profile)
            assert rec.completed
            assert rec.boxes_used == len(profile)
