"""Property-based tests for the execution cursor's invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algorithms.cursor import ExecutionCursor
from repro.algorithms.spec import RegularSpec, ScanPlacement

SETTINGS = dict(max_examples=40, deadline=None)


@st.composite
def spec_and_size(draw, max_depth=4):
    a = draw(st.integers(min_value=1, max_value=9))
    b = draw(st.sampled_from([2, 3, 4]))
    c = draw(st.sampled_from([0.0, 0.5, 1.0]))
    placement = draw(st.sampled_from(ScanPlacement.ALL))
    depth = draw(st.integers(min_value=1, max_value=max_depth))
    spec = RegularSpec(a, b, c, scan_placement=placement)
    return spec, b**depth


@st.composite
def boxes(draw, min_size=1, max_len=40):
    return draw(
        st.lists(
            st.integers(min_value=min_size, max_value=256),
            min_size=1,
            max_size=max_len,
        )
    )


class TestSeekRoundtrip:
    @given(data=st.data(), sp=spec_and_size())
    @settings(**SETTINGS)
    def test_seek_then_read(self, data, sp):
        spec, n = sp
        total = spec.subtree_accesses(n)
        pos = data.draw(st.integers(min_value=0, max_value=total))
        cur = ExecutionCursor(spec, n)
        cur.seek(pos)
        assert cur.access_index() == pos

    @given(sp=spec_and_size())
    @settings(**SETTINGS)
    def test_seek_to_total_is_done(self, sp):
        spec, n = sp
        cur = ExecutionCursor(spec, n)
        cur.seek(spec.subtree_accesses(n))
        assert cur.is_done


class TestConservation:
    @given(sp=spec_and_size(), bs=boxes())
    @settings(**SETTINGS)
    def test_simplified_conserves_leaves_and_scans(self, sp, bs):
        spec, n = sp
        cur = ExecutionCursor(spec, n)
        leaves = scans = 0
        import itertools

        for s in itertools.cycle(bs):
            out = cur.feed_simplified(s)
            leaves += out.leaves
            scans += out.scan_accesses
            if cur.is_done:
                break
            if leaves + scans > spec.subtree_accesses(n) * 2 + 10_000:
                break  # safety: should never trip
        assert cur.is_done
        assert leaves == spec.leaves(n)
        assert scans == spec.subtree_scan_total(n)

    @given(sp=spec_and_size(), bs=boxes())
    @settings(**SETTINGS)
    def test_models_conserve_identically(self, sp, bs):
        import itertools

        spec, n = sp
        for model in ("recursive", "greedy"):
            cur = ExecutionCursor(spec, n)
            leaves = scans = 0
            feed = cur.feed_recursive if model == "recursive" else cur.feed_greedy
            for s in itertools.cycle(bs):
                out = feed(s)
                leaves += out.leaves
                scans += out.scan_accesses
                if cur.is_done:
                    break
            assert leaves == spec.leaves(n)
            assert scans == spec.subtree_scan_total(n)


class TestMonotonicity:
    @given(sp=spec_and_size(), bs=boxes())
    @settings(**SETTINGS)
    def test_access_index_never_decreases(self, sp, bs):
        spec, n = sp
        cur = ExecutionCursor(spec, n)
        prev = 0
        for s in bs:
            if cur.is_done:
                break
            cur.feed_simplified(s)
            now = cur.access_index()
            assert now >= prev
            prev = now

    @given(sp=spec_and_size(), bs=boxes())
    @settings(**SETTINGS)
    def test_progress_matches_access_delta(self, sp, bs):
        # leaves*base + scans of each box == advance of the access index
        spec, n = sp
        cur = ExecutionCursor(spec, n)
        for s in bs:
            if cur.is_done:
                break
            before = cur.access_index()
            out = cur.feed_simplified(s)
            delta = cur.access_index() - before
            assert delta == out.leaves * spec.base_size + out.scan_accesses


class TestBudgets:
    @given(sp=spec_and_size(), bs=boxes())
    @settings(**SETTINGS)
    def test_greedy_box_never_exceeds_budget(self, sp, bs):
        spec, n = sp
        cur = ExecutionCursor(spec, n)
        for s in bs:
            if cur.is_done:
                break
            out = cur.feed_greedy(s)
            assert out.leaves * spec.base_size + out.scan_accesses <= s

    @given(sp=spec_and_size(), bs=boxes())
    @settings(**SETTINGS)
    def test_simplified_box_progress_bounded_by_potential(self, sp, bs):
        # Lemma 1: a box of size s completes at most (largest node <= s)
        # worth of leaves, plus it can never complete more than remaining
        from repro.analysis.potential import max_progress

        spec, n = sp
        cur = ExecutionCursor(spec, n)
        for s in bs:
            if cur.is_done:
                break
            out = cur.feed_simplified(s)
            bound = max_progress(spec, min(s, n))
            assert out.leaves <= max(bound, 1 if s >= spec.base_size else 0)


class TestSnapshot:
    @given(sp=spec_and_size(), bs=boxes(max_len=10))
    @settings(**SETTINGS)
    def test_snapshot_unaffected_by_future(self, sp, bs):
        spec, n = sp
        cur = ExecutionCursor(spec, n)
        for s in bs[: len(bs) // 2]:
            if cur.is_done:
                break
            cur.feed_simplified(s)
        snap = cur.snapshot()
        mark = snap.access_index()
        for s in bs:
            if cur.is_done:
                break
            cur.feed_simplified(s)
        assert snap.access_index() == mark
