"""Property-based correctness of the real algorithm kernels.

The kernels must compute correct answers for arbitrary inputs (not just
the fixtures) — hypothesis drives matrices, graphs, sequences, and arrays
through them against reference implementations.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp

from repro.algorithms.gep import floyd_warshall, floyd_warshall_reference
from repro.algorithms.lcs import lcs_length, lcs_reference
from repro.algorithms.mm import mm_inplace, mm_scan, strassen
from repro.algorithms.sorting import merge_sort

SETTINGS = dict(max_examples=25, deadline=None)

_dims = st.sampled_from([2, 4, 8])


def _matrices(draw, dim):
    shape = (dim, dim)
    return draw(
        hnp.arrays(
            np.float64,
            shape,
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        )
    )


@st.composite
def matrix_pairs(draw):
    dim = draw(_dims)
    return _matrices(draw, dim), _matrices(draw, dim)


class TestMatrixKernels:
    @given(pair=matrix_pairs())
    @settings(**SETTINGS)
    def test_mm_scan(self, pair):
        a, b = pair
        assert np.allclose(mm_scan(a, b, record=False).product, a @ b, atol=1e-8)

    @given(pair=matrix_pairs())
    @settings(**SETTINGS)
    def test_mm_inplace(self, pair):
        a, b = pair
        assert np.allclose(mm_inplace(a, b, record=False).product, a @ b, atol=1e-8)

    @given(pair=matrix_pairs())
    @settings(**SETTINGS)
    def test_strassen(self, pair):
        a, b = pair
        assert np.allclose(strassen(a, b, record=False).product, a @ b, atol=1e-7)


@st.composite
def distance_matrices(draw):
    dim = draw(_dims)
    d = draw(
        hnp.arrays(
            np.float64,
            (dim, dim),
            elements=st.floats(min_value=0.1, max_value=50, allow_nan=False),
        )
    )
    d = np.array(d)
    np.fill_diagonal(d, 0.0)
    return d


class TestFloydWarshall:
    @given(d=distance_matrices())
    @settings(**SETTINGS)
    def test_matches_reference(self, d):
        got = floyd_warshall(d, record=False).table
        assert np.allclose(got, floyd_warshall_reference(d))

    @given(d=distance_matrices())
    @settings(**SETTINGS)
    def test_scan_variant_agrees(self, d):
        a = floyd_warshall(d, record=False).table
        b = floyd_warshall(d, scan=True, record=False).table
        assert np.allclose(a, b)


class TestLCS:
    @given(
        data=st.data(),
        log_n=st.sampled_from([2, 3, 4]),
    )
    @settings(**SETTINGS)
    def test_matches_reference(self, data, log_n):
        n = 2**log_n
        alphabet = st.integers(min_value=0, max_value=3)
        x = data.draw(st.lists(alphabet, min_size=n, max_size=n))
        y = data.draw(st.lists(alphabet, min_size=n, max_size=n))
        run = lcs_length(np.array(x), np.array(y), base_n=2, record=False)
        assert run.length == lcs_reference(x, y)


class TestMergeSort:
    @given(
        values=hnp.arrays(
            np.int64,
            st.sampled_from([4, 8, 16, 64]),
            elements=st.integers(min_value=-1000, max_value=1000),
        )
    )
    @settings(**SETTINGS)
    def test_sorts(self, values):
        out = merge_sort(values, record=False).sorted_values
        assert np.array_equal(out, np.sort(values))
