"""Property-based tests for the trace machines."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp

from repro.algorithms.traces import Trace
from repro.machine.dam import simulate_dam
from repro.machine.square_machine import last_occurrence, run_trace_on_boxes

SETTINGS = dict(max_examples=40, deadline=None)

traces = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=300),
    elements=st.integers(min_value=0, max_value=30),
)
box_lists = st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=50)


def _mk(blocks):
    return Trace(blocks, np.empty((0, 2)))


class TestLastOccurrence:
    @given(blocks=traces)
    @settings(**SETTINGS)
    def test_matches_bruteforce(self, blocks):
        got = last_occurrence(blocks)
        for i in range(blocks.size):
            prev = [j for j in range(i) if blocks[j] == blocks[i]]
            assert got[i] == (prev[-1] if prev else -1)


class TestSquareMachineInvariants:
    @given(blocks=traces, boxes=box_lists)
    @settings(**SETTINGS)
    def test_each_box_within_distinct_budget(self, blocks, boxes):
        t = _mk(blocks)
        rec = run_trace_on_boxes(t, boxes)
        for (lo, hi), size in zip(rec.box_spans(), rec.box_sizes):
            assert t.working_set_of_range(int(lo), int(hi)) <= size

    @given(blocks=traces, boxes=box_lists)
    @settings(**SETTINGS)
    def test_boxes_are_maximal(self, blocks, boxes):
        # a box stops exactly when one more reference would exceed its
        # budget (unless the trace ended)
        t = _mk(blocks)
        rec = run_trace_on_boxes(t, boxes)
        for (lo, hi), size in zip(rec.box_spans(), rec.box_sizes):
            if hi < len(t):
                assert t.working_set_of_range(int(lo), int(hi) + 1) == size + 1

    @given(blocks=traces, boxes=box_lists)
    @settings(**SETTINGS)
    def test_spans_tile_prefix(self, blocks, boxes):
        rec = run_trace_on_boxes(_mk(blocks), boxes)
        spans = rec.box_spans()
        if spans.size:
            assert spans[0, 0] == 0
            assert np.all(spans[1:, 0] == spans[:-1, 1])

    @given(blocks=traces)
    @settings(**SETTINGS)
    def test_infinite_unit_boxes_complete(self, blocks):
        import itertools

        rec = run_trace_on_boxes(_mk(blocks), itertools.repeat(1))
        assert rec.completed

    @given(blocks=traces)
    @settings(**SETTINGS)
    def test_one_giant_box_when_it_fits(self, blocks):
        t = _mk(blocks)
        rec = run_trace_on_boxes(t, [t.distinct_blocks() + 1])
        assert rec.completed and rec.boxes_used == 1


class TestDamProperties:
    @given(blocks=traces, m=st.integers(min_value=1, max_value=40))
    @settings(**SETTINGS)
    def test_io_bounds(self, blocks, m):
        t = _mk(blocks)
        r = simulate_dam(t, m, policy="lru")
        assert t.distinct_blocks() <= r.io_count <= len(t)

    @given(blocks=traces, m=st.integers(min_value=1, max_value=20))
    @settings(**SETTINGS)
    def test_opt_optimal_among_policies(self, blocks, m):
        t = _mk(blocks)
        opt = simulate_dam(t, m, policy="opt").io_count
        for policy in ("lru", "fifo"):
            assert opt <= simulate_dam(t, m, policy=policy).io_count

    @given(blocks=traces, m=st.integers(min_value=1, max_value=20))
    @settings(**SETTINGS)
    def test_lru_stack_property(self, blocks, m):
        t = _mk(blocks)
        small = simulate_dam(t, m, policy="lru").io_count
        big = simulate_dam(t, m + 5, policy="lru").io_count
        assert big <= small
