"""Property-based verification of the No-Catch-up Lemma (Lemma 2).

The lemma is universally quantified over box sequences and start
positions — ideal hypothesis territory: for random (a,b,c) shapes, random
box sequences, and random start positions, a later start must never
finish strictly earlier, under every box semantics.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algorithms.cursor import ExecutionCursor
from repro.algorithms.spec import RegularSpec, ScanPlacement
from repro.analysis.nocatchup import check_no_catchup

SETTINGS = dict(max_examples=40, deadline=None)


@st.composite
def scenario(draw):
    b = draw(st.sampled_from([2, 3, 4]))
    a = draw(st.integers(min_value=1, max_value=2 * b + 1))
    c = draw(st.sampled_from([0.0, 0.5, 1.0]))
    placement = draw(st.sampled_from(ScanPlacement.ALL))
    depth = draw(st.integers(min_value=1, max_value=3))
    spec = RegularSpec(a, b, c, scan_placement=placement)
    n = b**depth
    boxes = draw(
        st.lists(st.integers(min_value=1, max_value=2 * n), min_size=1, max_size=25)
    )
    return spec, n, boxes


@given(sc=scenario(), seed=st.integers(min_value=0, max_value=2**31))
@settings(**SETTINGS)
def test_no_catchup_simplified(sc, seed):
    spec, n, boxes = sc
    report = check_no_catchup(spec, n, boxes, samples=24, rng=seed)
    assert report.holds, report.violations


@given(sc=scenario(), seed=st.integers(min_value=0, max_value=2**31))
@settings(**SETTINGS)
def test_no_catchup_greedy(sc, seed):
    spec, n, boxes = sc
    report = check_no_catchup(spec, n, boxes, samples=24, rng=seed, model="greedy")
    assert report.holds, report.violations


@given(sc=scenario(), kappa=st.sampled_from([2, 4]),
       seed=st.integers(min_value=0, max_value=2**31))
@settings(**SETTINGS)
def test_no_catchup_recursive_with_divisor(sc, kappa, seed):
    # the recursive model with any completion divisor must also satisfy
    # the lemma: run manually across sorted starts
    import numpy as np

    spec, n, boxes = sc
    total = spec.subtree_accesses(n)
    gen = np.random.default_rng(seed)
    starts = sorted({0, *map(int, gen.integers(0, total, size=16))})
    finishes = []
    cur = ExecutionCursor(spec, n)
    for start in starts:
        cur.seek(start)
        for s in boxes:
            if cur.is_done:
                break
            cur.feed_recursive(s, completion_divisor=kappa)
        finishes.append(cur.access_index())
    assert finishes == sorted(finishes)
