"""Property-based tests for profile containers and constructions."""

import numpy as np
import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.util.intmath import critical_exponent

from repro.profiles.base import MemoryProfile
from repro.profiles.perturbations import shuffle, start_time_shift
from repro.profiles.reduction import squarify
from repro.profiles.square import SquareProfile
from repro.profiles.worst_case import (
    worst_case_box_count,
    worst_case_potential,
    worst_case_profile,
    worst_case_total_time,
)

SETTINGS = dict(max_examples=50, deadline=None)

box_lists = st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=60)


class TestSquareProfileAlgebra:
    @given(a=box_lists, b=box_lists)
    @settings(**SETTINGS)
    def test_concat_lengths_and_time(self, a, b):
        pa, pb = SquareProfile(a), SquareProfile(b)
        pc = pa + pb
        assert len(pc) == len(pa) + len(pb)
        assert pc.total_time == pa.total_time + pb.total_time

    @given(bs=box_lists, k=st.integers(min_value=0, max_value=5))
    @settings(**SETTINGS)
    def test_repeat_time(self, bs, k):
        p = SquareProfile(bs)
        assert p.repeat(k).total_time == k * p.total_time

    @given(bs=box_lists, r=st.integers(min_value=0, max_value=100))
    @settings(**SETTINGS)
    def test_rotate_preserves_multiset(self, bs, r):
        p = SquareProfile(bs)
        q = p.rotate(r)
        assert sorted(q.boxes.tolist()) == sorted(bs)

    @given(bs=box_lists, seed=st.integers(min_value=0, max_value=2**31))
    @settings(**SETTINGS)
    def test_shuffle_preserves_multiset(self, bs, seed):
        p = SquareProfile(bs)
        q = shuffle(p, rng=seed)
        assert sorted(q.boxes.tolist()) == sorted(bs)

    @given(bs=box_lists, n=st.integers(min_value=1, max_value=10**6),
           e=st.floats(min_value=0.0, max_value=3.0))
    @settings(**SETTINGS)
    def test_bounded_potential_below_potential(self, bs, n, e):
        p = SquareProfile(bs)
        assert p.bounded_potential_sum(n, e) <= p.potential_sum(e) + 1e-6

    @given(bs=box_lists, e=st.floats(min_value=0.0, max_value=3.0))
    @settings(**SETTINGS)
    def test_bounded_potential_monotone_in_n(self, bs, e):
        p = SquareProfile(bs)
        small = p.bounded_potential_sum(10, e)
        large = p.bounded_potential_sum(1000, e)
        assert small <= large + 1e-9


class TestStartTimeShift:
    @given(bs=box_lists, tau=st.integers(min_value=0, max_value=10**7))
    @settings(**SETTINGS)
    def test_skip_mode_is_sub_multiset(self, bs, tau):
        p = SquareProfile(bs)
        q = start_time_shift(p, tau, partial="skip")
        # every box of q appears in p (possibly rotated/dropped remnant)
        from collections import Counter

        assert not Counter(q.boxes.tolist()) - Counter(bs)

    @given(bs=box_lists, tau=st.integers(min_value=0, max_value=10**7))
    @settings(**SETTINGS)
    def test_shrink_mode_preserves_period(self, bs, tau):
        p = SquareProfile(bs)
        q = start_time_shift(p, tau, partial="shrink")
        assert q.total_time == p.total_time


class TestWorstCaseClosedForms:
    @given(
        a=st.integers(min_value=1, max_value=9),
        b=st.sampled_from([2, 3, 4]),
        depth=st.integers(min_value=0, max_value=4),
    )
    @settings(**SETTINGS)
    def test_all_closed_forms(self, a, b, depth):
        n = b**depth
        if worst_case_box_count(a, b, n) > 200_000:
            return
        p = worst_case_profile(a, b, n)
        e = critical_exponent(a, b)
        assert len(p) == worst_case_box_count(a, b, n)
        assert p.total_time == worst_case_total_time(a, b, n)
        assert p.potential_sum(e) == pytest.approx(worst_case_potential(a, b, n))


class TestSquarify:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=120)
    )
    @settings(**SETTINGS)
    def test_inscribed_and_tiling(self, sizes):
        p = MemoryProfile(sizes)
        sq = squarify(p)
        arr = p.sizes
        t = 0
        for box in sq:
            assert arr[t : t + box].min() >= box
            t += box
        assert t == len(p)
