"""Property-based tests for the recurrence solver and distributions."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.algorithms.spec import RegularSpec
from repro.analysis.recurrence import (
    expected_scan_boxes,
    scan_boxes_bounds,
    solve_recurrence,
)
from repro.profiles.distributions import BoxDistribution

SETTINGS = dict(max_examples=30, deadline=None)


@st.composite
def distributions(draw):
    atoms = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=512),
                st.floats(min_value=0.01, max_value=1.0),
            ),
            min_size=1,
            max_size=6,
            unique_by=lambda t: t[0],
        )
    )
    sizes = [a for a, _ in atoms]
    probs = [p for _, p in atoms]
    return BoxDistribution(sizes, probs)


@st.composite
def gap_specs(draw):
    b = draw(st.sampled_from([2, 3, 4]))
    a = draw(st.integers(min_value=b + 1, max_value=3 * b))
    return RegularSpec(a, b, 1.0)


class TestScanDP:
    @given(dist=distributions(), L=st.integers(min_value=0, max_value=3000))
    @settings(**SETTINGS)
    def test_within_wald_bounds(self, dist, L):
        ek = expected_scan_boxes(L, dist)
        lo, hi = scan_boxes_bounds(L, dist)
        assert lo - 1e-9 <= ek <= hi + 1e-9

    @given(dist=distributions(), L=st.integers(min_value=1, max_value=2000))
    @settings(**SETTINGS)
    def test_monotone_in_length(self, dist, L):
        assert expected_scan_boxes(L, dist) <= expected_scan_boxes(L + 1, dist) + 1e-9

    @given(dist=distributions(), L=st.integers(min_value=1, max_value=2000))
    @settings(**SETTINGS)
    def test_at_least_one_box(self, dist, L):
        assert expected_scan_boxes(L, dist) >= 1.0 - 1e-12

    @given(dist=distributions())
    @settings(**SETTINGS)
    def test_single_box_regime(self, dist):
        # a scan no longer than the minimum box always takes exactly 1 box
        assert expected_scan_boxes(dist.min_size, dist) == 1.0


class TestSolver:
    @given(spec=gap_specs(), dist=distributions(),
           depth=st.integers(min_value=1, max_value=4))
    @settings(**SETTINGS)
    def test_structural_invariants(self, spec, dist, depth):
        n = spec.b**depth
        sol = solve_recurrence(spec, n, dist)
        fs = [rec.f for rec in sol.levels]
        assert all(f >= 1.0 - 1e-12 for f in fs)
        assert fs == sorted(fs)  # harder problems need more boxes
        for rec in sol.levels:
            assert 0.0 <= rec.q <= 1.0
            assert rec.f_prime <= rec.f + 1e-12
            assert rec.m_n > 0

    @given(spec=gap_specs(), dist=distributions(),
           depth=st.integers(min_value=1, max_value=4))
    @settings(**SETTINGS)
    def test_f_decomposition(self, spec, dist, depth):
        n = spec.b**depth
        sol = solve_recurrence(spec, n, dist)
        for rec in sol.levels[1:]:
            want = rec.f_prime + (1.0 - rec.q) ** spec.a * rec.scan_boxes
            assert abs(rec.f - want) < 1e-9 * max(1.0, rec.f)

    @given(spec=gap_specs(), dist=distributions(),
           depth=st.integers(min_value=1, max_value=4))
    @settings(**SETTINGS)
    def test_cost_ratio_at_least_one(self, spec, dist, depth):
        # with base_size 1 each box completes at most min(n, s)^e leaves,
        # so the stopped potential is at least n^e
        n = spec.b**depth
        sol = solve_recurrence(spec, n, dist)
        assert sol.cost_ratio >= 1.0 - 1e-9

    @given(dist=distributions(), depth=st.integers(min_value=1, max_value=4))
    @settings(**SETTINGS)
    def test_solver_matches_simulation_spot(self, dist, depth):
        from repro.simulation.montecarlo import estimate, sample_boxes_to_complete

        spec = RegularSpec(8, 4, 1.0)
        n = 4**depth
        sol = solve_recurrence(spec, n, dist)
        mc = estimate(
            lambda g: sample_boxes_to_complete(spec, n, dist, g),
            trials=120,
            rng=0,
        )
        tol = max(6 * mc.ci_halfwidth, 0.05 * sol.f)
        assert abs(mc.mean - sol.f) <= tol


class TestRenewalImplementations:
    @given(dist=distributions(), L=st.integers(min_value=1, max_value=1500))
    @settings(**SETTINGS)
    def test_wave_and_filter_paths_agree(self, dist, L):
        from repro.analysis.recurrence import (
            _renewal_dp_filter,
            _renewal_dp_waves,
        )

        a = _renewal_dp_waves(L, dist.support, dist.probabilities)
        b = _renewal_dp_filter(L, dist.support, dist.probabilities)
        assert np.allclose(a, b, rtol=1e-9, atol=1e-9)

    @given(dist=distributions())
    @settings(**SETTINGS)
    def test_asymptotic_extension_continuous(self, dist):
        # the asymptotic branch must join the exact branch smoothly: the
        # value just past any large anchor is within one box of it
        from repro.analysis.recurrence import expected_scan_boxes

        anchor = 10**7  # far beyond every horizon used internally
        v1 = expected_scan_boxes(anchor, dist)
        v2 = expected_scan_boxes(anchor + dist.min_size, dist)
        assert 0.0 <= v2 - v1 <= 1.0 + 1e-6


@st.composite
def power_grid_distributions(draw, b=4, hi=6):
    """Distributions supported on powers of b — Section 4's normalization
    ("we assume that all box sizes and problem sizes are powers of 4"),
    under which the semi-inductive feedback structure is stated."""
    atoms = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=hi),
                st.floats(min_value=0.01, max_value=1.0),
            ),
            min_size=1,
            max_size=5,
            unique_by=lambda t: t[0],
        )
    )
    return BoxDistribution([b**k for k, _ in atoms], [p for _, p in atoms])


class TestNegativeFeedbackLoop:
    @given(dist=power_grid_distributions(), depth=st.integers(min_value=2, max_value=6))
    @settings(**SETTINGS)
    def test_pressure_above_universal_constant(self, dist, depth):
        # The semi-inductive structure (Eqs 7 + 9): Equation 7 may fail,
        # but only at levels whose normalized expected cost is below a
        # small universal constant (empirically < 2 on the power grid;
        # off-lattice box sizes need a larger C, which is why Section 4
        # normalizes everything to powers of 4).
        from repro.analysis.feedback import verify_negative_feedback

        spec = RegularSpec(8, 4, 1.0)
        sol = solve_recurrence(spec, 4**depth, dist)
        assert verify_negative_feedback(sol, C=3.0)
