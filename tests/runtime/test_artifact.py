"""Unit tests for the schema-versioned RunArtifact."""

import dataclasses

import pytest

from repro.errors import ArtifactError
from repro.experiments.common import ExperimentResult
from repro.runtime.artifact import SCHEMA_VERSION, ResultTable, RunArtifact


def make_artifact(**overrides) -> RunArtifact:
    base = dict(
        experiment_id="x",
        title="Title",
        claim="Claim",
        tables=(
            ResultTable(
                title="T",
                headers=("a", "b"),
                rows=((1, 2.5), ("s", True), (None, -3.0)),
            ),
        ),
        metrics={"reproduced": True, "ratio": 1.25, "sizes": [1, 2, 3]},
        verdict="REPRODUCED",
        notes="a note",
        seed=0,
        quick=True,
        wall_time_s=0.125,
        counters={"sim.runs": 3, "sim.boxes": 120},
        repro_version="1.0.0",
        git_revision="abc1234",
    )
    base.update(overrides)
    return RunArtifact(**base)


class TestRoundTrip:
    def test_lossless_equality(self):
        artifact = make_artifact()
        loaded = RunArtifact.from_json(artifact.to_json())
        assert loaded == artifact

    def test_json_fixpoint(self):
        artifact = make_artifact()
        once = artifact.to_json()
        assert RunArtifact.from_json(once).to_json() == once

    def test_rendering_survives_round_trip(self):
        artifact = make_artifact()
        assert RunArtifact.from_json(artifact.to_json()).render() == artifact.render()

    def test_real_experiment_round_trips(self):
        from repro.runtime import run_one

        artifact = run_one("fig1", quick=True, seed=0)
        loaded = RunArtifact.from_json(artifact.to_json())
        assert loaded == artifact
        assert loaded.counters == artifact.counters
        assert loaded.wall_time_s == pytest.approx(artifact.wall_time_s)


class TestSchemaVersion:
    def test_current_version_stamped(self):
        assert make_artifact().schema_version == SCHEMA_VERSION
        assert make_artifact().to_dict()["schema_version"] == SCHEMA_VERSION

    @pytest.mark.parametrize("bad", [0, SCHEMA_VERSION + 1, "1", None])
    def test_unknown_version_refused(self, bad):
        payload = make_artifact().to_dict()
        payload["schema_version"] = bad
        with pytest.raises(ArtifactError):
            RunArtifact.from_dict(payload)

    def test_not_an_object_refused(self):
        with pytest.raises(ArtifactError):
            RunArtifact.from_json("[1, 2]")
        with pytest.raises(ArtifactError):
            RunArtifact.from_json("not json")

    def test_v1_payload_still_reads(self):
        payload = make_artifact().to_dict()
        payload["schema_version"] = 1
        payload.pop("cache_hit", None)
        payload.pop("saved_wall_time_s", None)
        loaded = RunArtifact.from_dict(payload)
        assert loaded.schema_version == 1
        assert loaded.cache_hit is None
        assert loaded.saved_wall_time_s is None


class TestImmutability:
    def test_frozen(self):
        artifact = make_artifact()
        with pytest.raises(dataclasses.FrozenInstanceError):
            artifact.verdict = "changed"

    def test_without_timing_clears_timing_and_cache_stamp(self):
        artifact = make_artifact(cache_hit=True, saved_wall_time_s=2.5)
        stripped = artifact.without_timing()
        assert stripped.wall_time_s is None
        assert stripped.cache_hit is None
        assert stripped.saved_wall_time_s is None
        assert stripped.counters == artifact.counters
        assert stripped.metrics == artifact.metrics

    def test_without_cache_stamp_keeps_wall_time(self):
        artifact = make_artifact(cache_hit=False, saved_wall_time_s=2.5)
        canonical = artifact.without_cache_stamp()
        assert canonical.wall_time_s == pytest.approx(0.125)
        assert canonical.cache_hit is None
        assert canonical.saved_wall_time_s is None

    def test_cached_and_live_agree_modulo_timing(self):
        live = make_artifact()
        cached = make_artifact(
            wall_time_s=0.0, cache_hit=True, saved_wall_time_s=0.125
        )
        assert live.without_timing().to_json() == cached.without_timing().to_json()


class TestJsonifyRefusals:
    def test_unserializable_metric_refused(self):
        artifact = make_artifact(metrics={"gen": object()})
        with pytest.raises(ArtifactError):
            artifact.to_dict()

    def test_non_string_metric_key_refused(self):
        artifact = make_artifact(metrics={1: "x"})
        with pytest.raises(ArtifactError):
            artifact.to_dict()


class TestBuilderFinalize:
    def test_finalize_matches_builder_fields(self):
        result = ExperimentResult("x", "Title", "Claim")
        result.add_table("T", ["a", "b"], [(1, 2.5)])
        result.metrics["reproduced"] = True
        result.verdict = "REPRODUCED"
        result.notes = "n"
        artifact = result.finalize(quick=True, seed=7)
        assert artifact.experiment_id == "x"
        assert artifact.tables == tuple(result.tables)
        assert artifact.metrics == result.metrics
        assert artifact.verdict == "REPRODUCED"
        assert artifact.notes == "n"
        assert artifact.seed == 7 and artifact.quick is True
        assert artifact.repro_version

    def test_finalize_render_matches_builder_render(self):
        result = ExperimentResult("x", "Title", "Claim")
        result.add_table("T", ["a", "b"], [(1, 2.5), ("left", False)])
        result.metrics["reproduced"] = True
        result.verdict = "REPRODUCED"
        assert result.finalize().render() == result.render()

    def test_finalize_snapshot_is_independent(self):
        result = ExperimentResult("x", "t", "c")
        artifact = result.finalize()
        result.add_table("T", ["a"], [(1,)])
        result.metrics["later"] = 1
        assert artifact.tables == ()
        assert artifact.metrics == {}

    def test_reproduced_property(self):
        assert make_artifact(metrics={}).reproduced is True
        assert make_artifact(metrics={"reproduced": False}).reproduced is False
