"""Runner tests: instrumentation attachment and cross-worker determinism.

The determinism contract is the acceptance criterion of the runtime
layer: every experiment is a pure function of ``(quick, seed)``, so
``jobs=1`` and ``jobs=N`` must produce identical artifacts (tables,
metrics, verdicts, counters) — only wall times may differ.
"""

import pytest

from repro.api import run_all
from repro.errors import ExperimentError
from repro.experiments.registry import EXPERIMENTS
from repro.runtime import RunArtifact
from repro.runtime.runner import ExperimentRunner, run_one

# A fast, simulation-heavy subset for the unmarked determinism check;
# the full-registry comparison runs under the slow marker below.
SUBSET = ["fig1", "mmcount", "lemma1"]


class TestRunOne:
    def test_returns_instrumented_artifact(self):
        artifact = run_one("fig1", quick=True, seed=0)
        assert isinstance(artifact, RunArtifact)
        assert artifact.wall_time_s is not None and artifact.wall_time_s > 0
        assert artifact.seed == 0 and artifact.quick is True
        assert artifact.counters.get("sim.runs", 0) > 0

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            run_one("nope")

    def test_timing_attached_without_mutating_payload(self):
        bare = EXPERIMENTS["fig1"].runner(quick=True, seed=0)
        timed = run_one("fig1", quick=True, seed=0)
        assert timed.without_timing() != bare  # counters were attached
        assert timed.tables == bare.tables
        assert timed.metrics == bare.metrics
        assert timed.verdict == bare.verdict


class TestRunnerValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ExperimentError):
            ExperimentRunner(jobs=0)

    def test_unknown_id_rejected_before_spawning(self):
        with pytest.raises(ExperimentError):
            list(ExperimentRunner(jobs=4).run_iter(["fig1", "nope"]))

    def test_all_keyword_expands_registry(self):
        runner = ExperimentRunner()
        from repro.runtime.runner import _resolve_ids

        assert _resolve_ids(["all"]) == list(EXPERIMENTS)
        assert _resolve_ids(None) == list(EXPERIMENTS)
        assert runner.jobs == 1

    def test_order_preserved(self):
        ids = ["mmcount", "fig1"]
        artifacts = ExperimentRunner(jobs=2).run(ids, quick=True, seed=0)
        assert [a.experiment_id for a in artifacts] == ids


class TestDeterminismAcrossWorkers:
    def test_subset_jobs1_equals_jobs2(self):
        serial = ExperimentRunner(jobs=1).run(SUBSET, quick=True, seed=0)
        parallel = ExperimentRunner(jobs=2).run(SUBSET, quick=True, seed=0)
        for a, b in zip(serial, parallel):
            assert a.without_timing() == b.without_timing()
            assert a.render() == b.render()

    def test_artifacts_round_trip_through_json(self):
        for artifact in ExperimentRunner(jobs=1).run(SUBSET, quick=True, seed=0):
            assert RunArtifact.from_json(artifact.to_json()) == artifact

    @pytest.mark.slow
    def test_run_all_jobs1_equals_jobs4(self):
        # cache="off": a warm hit would make the comparison vacuous
        serial = run_all(quick=True, seed=0, jobs=1, cache="off")
        parallel = run_all(quick=True, seed=0, jobs=4, cache="off")
        assert list(serial) == list(parallel) == list(EXPERIMENTS)
        for eid in serial:
            a, b = serial[eid], parallel[eid]
            assert a.without_timing() == b.without_timing(), eid
            assert RunArtifact.from_json(b.to_json()) == b, eid


class TestRegistryRunAll:
    # run_all over the full registry is exercised by the slow determinism
    # test above; here we only check the runner path stays well-formed.
    def test_runner_artifacts_keyed_by_id(self):
        artifacts = {
            a.experiment_id: a
            for a in ExperimentRunner().run(["fig1"], quick=True, seed=0)
        }
        assert set(artifacts) == {"fig1"}
        assert artifacts["fig1"].reproduced
