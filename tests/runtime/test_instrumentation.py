"""Unit tests for the per-run instrumentation counters."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.runtime.instrumentation import Counters, collect, record


class TestCounters:
    def test_add_and_get(self):
        c = Counters()
        c.add("a")
        c.add("a", 2)
        c.add("b", 0.5)
        assert c.get("a") == 3
        assert c.get("b") == 0.5
        assert c.get("missing") == 0

    def test_as_dict_sorted(self):
        c = Counters()
        c.add("z")
        c.add("a")
        assert list(c.as_dict()) == ["a", "z"]


class TestCollect:
    def test_record_outside_collect_is_noop(self):
        record("orphan", 5)  # must not raise or leak anywhere

    def test_collect_captures_records(self):
        with collect() as counters:
            record("sim.runs")
            record("sim.boxes", 40)
        assert counters.as_dict() == {"sim.boxes": 40, "sim.runs": 1}

    def test_nested_collectors_both_see_records(self):
        with collect() as outer:
            record("a")
            with collect() as inner:
                record("a", 2)
        assert inner.get("a") == 2
        assert outer.get("a") == 3

    def test_collector_deactivated_after_exit(self):
        with collect() as counters:
            record("a")
        record("a")
        assert counters.get("a") == 1

    def test_threads_collect_in_isolation(self):
        # The serve daemon's jobs=0 mode runs execute() concurrently on
        # executor threads; a shared collector stack would let runs
        # record into each other's counters and the corrupted artifacts
        # would be cached and served.  Each thread must see exactly its
        # own work.
        barrier = threading.Barrier(4)

        def one_run(amount):
            with collect() as counters:
                barrier.wait()  # all threads record while all collect
                for _ in range(50):
                    record("work", amount)
            return counters.get("work")

        with ThreadPoolExecutor(max_workers=4) as pool:
            totals = list(pool.map(one_run, [1, 10, 100, 1000]))
        assert totals == [50, 500, 5000, 50000]

    def test_record_on_foreign_thread_is_noop(self):
        with collect() as counters:
            thread = threading.Thread(target=record, args=("other", 7))
            thread.start()
            thread.join()
        assert counters.get("other") == 0

    def test_simulation_layer_records(self):
        from repro.algorithms.library import MM_SCAN
        from repro.profiles.worst_case import worst_case_profile
        from repro.simulation.symbolic import SymbolicSimulator

        n = 4**4
        profile = worst_case_profile(8, 4, n)
        with collect() as counters:
            SymbolicSimulator(MM_SCAN, n).run(profile)
        assert counters.get("sim.runs") == 1
        assert counters.get("sim.boxes") > 0

    def test_montecarlo_layer_records(self):
        from repro.simulation.montecarlo import estimate

        with collect() as counters:
            estimate(lambda gen: float(gen.random()), trials=5, rng=0)
        assert counters.get("mc.estimates") == 1
        assert counters.get("mc.trials") == 5
