"""Unit tests for the run manifest."""

import pytest

from repro.errors import ArtifactError
from repro.runtime.artifact import RunArtifact
from repro.runtime.manifest import ManifestEntry, RunManifest


def artifact(eid: str, wall: float, reproduced: bool = True) -> RunArtifact:
    return RunArtifact(
        experiment_id=eid,
        title=f"title {eid}",
        claim="claim",
        metrics={"reproduced": reproduced},
        verdict="REPRODUCED" if reproduced else "MISMATCH",
        seed=0,
        quick=True,
        wall_time_s=wall,
        counters={"sim.runs": 2},
        repro_version="1.0.0",
        git_revision="abc1234",
    )


class TestBuild:
    def test_entries_follow_artifacts(self):
        manifest = RunManifest.build(
            [artifact("a", 1.0), artifact("b", 3.0, reproduced=False)],
            seed=0,
            quick=True,
            jobs=2,
            total_wall_time_s=2.5,
            artifact_names={"a": "a.json", "b": "b.json"},
        )
        assert [e.experiment_id for e in manifest.entries] == ["a", "b"]
        assert manifest.entries[0].artifact == "a.json"
        assert manifest.entries[1].reproduced is False
        assert manifest.entries[0].counters == {"sim.runs": 2}
        assert manifest.repro_version == "1.0.0"

    def test_speedup_is_serial_equivalent_over_elapsed(self):
        manifest = RunManifest.build(
            [artifact("a", 1.0), artifact("b", 3.0)],
            seed=0,
            quick=True,
            jobs=2,
            total_wall_time_s=2.0,
        )
        assert manifest.experiment_wall_time_s == pytest.approx(4.0)
        assert manifest.speedup == pytest.approx(2.0)

    def test_speedup_none_without_total(self):
        manifest = RunManifest.build(
            [artifact("a", 1.0)], seed=0, quick=True, jobs=1
        )
        assert manifest.speedup is None


class TestRoundTrip:
    def test_lossless(self):
        manifest = RunManifest.build(
            [artifact("a", 1.0), artifact("b", 3.0)],
            seed=7,
            quick=False,
            jobs=4,
            total_wall_time_s=2.0,
            artifact_names={"a": "a.json"},
        )
        loaded = RunManifest.from_json(manifest.to_json())
        assert loaded == manifest
        assert loaded.to_json() == manifest.to_json()

    def test_unknown_schema_refused(self):
        payload = RunManifest.build(
            [artifact("a", 1.0)], seed=0, quick=True, jobs=1
        ).to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ArtifactError):
            RunManifest.from_dict(payload)

    def test_malformed_entry_refused(self):
        with pytest.raises(ArtifactError):
            ManifestEntry.from_dict({"verdict": "x"})
