"""Unit tests for the run manifest."""

import pytest

from repro.errors import ArtifactError
from repro.runtime.artifact import RunArtifact
from repro.runtime.manifest import ManifestEntry, RunManifest


def artifact(
    eid: str,
    wall: float,
    reproduced: bool = True,
    cache_hit: "bool | None" = None,
    saved: "float | None" = None,
) -> RunArtifact:
    return RunArtifact(
        experiment_id=eid,
        title=f"title {eid}",
        claim="claim",
        metrics={"reproduced": reproduced},
        verdict="REPRODUCED" if reproduced else "MISMATCH",
        seed=0,
        quick=True,
        wall_time_s=wall,
        counters={"sim.runs": 2},
        cache_hit=cache_hit,
        saved_wall_time_s=saved,
        repro_version="1.0.0",
        git_revision="abc1234",
    )


def hit(eid: str, saved: float) -> RunArtifact:
    """An all-cache-hit artifact: zero live compute, ``saved`` banked."""
    return artifact(eid, 0.0, cache_hit=True, saved=saved)


class TestBuild:
    def test_entries_follow_artifacts(self):
        manifest = RunManifest.build(
            [artifact("a", 1.0), artifact("b", 3.0, reproduced=False)],
            seed=0,
            quick=True,
            jobs=2,
            total_wall_time_s=2.5,
            artifact_names={"a": "a.json", "b": "b.json"},
        )
        assert [e.experiment_id for e in manifest.entries] == ["a", "b"]
        assert manifest.entries[0].artifact == "a.json"
        assert manifest.entries[1].reproduced is False
        assert manifest.entries[0].counters == {"sim.runs": 2}
        assert manifest.repro_version == "1.0.0"

    def test_speedup_is_serial_equivalent_over_elapsed(self):
        manifest = RunManifest.build(
            [artifact("a", 1.0), artifact("b", 3.0)],
            seed=0,
            quick=True,
            jobs=2,
            total_wall_time_s=2.0,
        )
        assert manifest.experiment_wall_time_s == pytest.approx(4.0)
        assert manifest.speedup == pytest.approx(2.0)

    def test_speedup_none_without_total(self):
        manifest = RunManifest.build(
            [artifact("a", 1.0)], seed=0, quick=True, jobs=1
        )
        assert manifest.speedup is None


class TestCacheAccounting:
    def test_entries_carry_cache_fields(self):
        manifest = RunManifest.build(
            [hit("a", 2.0), artifact("b", 1.0, cache_hit=False)],
            seed=0,
            quick=True,
            jobs=1,
            total_wall_time_s=1.0,
        )
        assert manifest.entries[0].cache_hit is True
        assert manifest.entries[0].saved_wall_time_s == pytest.approx(2.0)
        assert manifest.entries[1].cache_hit is False
        assert manifest.cache_hits == 1
        assert manifest.saved_wall_time_s == pytest.approx(2.0)
        assert manifest.serial_equivalent_wall_time_s == pytest.approx(3.0)

    def test_all_hits_speedup_does_not_divide_by_zero(self):
        # Regression: with every entry a cache hit, live compute time is
        # exactly 0.0; cache_speedup must guard the division.
        manifest = RunManifest.build(
            [hit("a", 2.0), hit("b", 3.0)],
            seed=0,
            quick=True,
            jobs=1,
            total_wall_time_s=0.01,
        )
        assert manifest.experiment_wall_time_s == 0.0
        assert manifest.cache_speedup == float("inf")
        assert manifest.speedup == pytest.approx(5.0 / 0.01)

    def test_no_hits_no_time_cache_speedup_is_none(self):
        manifest = RunManifest.build(
            [artifact("a", 0.0)], seed=0, quick=True, jobs=1,
            total_wall_time_s=0.01,
        )
        assert manifest.cache_speedup is None

    def test_live_run_cache_speedup(self):
        manifest = RunManifest.build(
            [artifact("a", 1.0), hit("b", 3.0)],
            seed=0,
            quick=True,
            jobs=1,
            total_wall_time_s=1.0,
        )
        assert manifest.cache_speedup == pytest.approx(4.0)

    def test_to_dict_serializes_cache_summary(self):
        payload = RunManifest.build(
            [hit("a", 2.0)], seed=0, quick=True, jobs=1,
            total_wall_time_s=0.01,
        ).to_dict()
        assert payload["cache_hits"] == 1
        assert payload["saved_wall_time_s"] == pytest.approx(2.0)
        # cache_speedup can be inf (not JSON-representable): never serialized
        assert "cache_speedup" not in payload

    def test_to_dict_serializes_serial_equivalent_time(self):
        # speedup is derived from this number; a serialized manifest
        # that lost it could not be audited
        payload = RunManifest.build(
            [hit("a", 2.0), artifact("b", 1.0, cache_hit=False)],
            seed=0,
            quick=True,
            jobs=1,
            total_wall_time_s=1.0,
        ).to_dict()
        assert payload["serial_equivalent_wall_time_s"] == pytest.approx(3.0)

    def test_cache_fields_round_trip(self):
        manifest = RunManifest.build(
            [hit("a", 2.0), artifact("b", 1.0, cache_hit=False)],
            seed=0,
            quick=True,
            jobs=1,
            total_wall_time_s=1.0,
        )
        loaded = RunManifest.from_json(manifest.to_json())
        assert loaded == manifest
        assert loaded.cache_hits == 1


class TestRoundTrip:
    def test_lossless(self):
        manifest = RunManifest.build(
            [artifact("a", 1.0), artifact("b", 3.0)],
            seed=7,
            quick=False,
            jobs=4,
            total_wall_time_s=2.0,
            artifact_names={"a": "a.json"},
        )
        loaded = RunManifest.from_json(manifest.to_json())
        assert loaded == manifest
        assert loaded.to_json() == manifest.to_json()

    def test_unknown_schema_refused(self):
        payload = RunManifest.build(
            [artifact("a", 1.0)], seed=0, quick=True, jobs=1
        ).to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ArtifactError):
            RunManifest.from_dict(payload)

    def test_malformed_entry_refused(self):
        with pytest.raises(ArtifactError):
            ManifestEntry.from_dict({"verdict": "x"})


class TestGCCounters:
    GC = {
        "dry_run": False,
        "examined_entries": 4,
        "evicted_entries": 1,
        "evicted_bytes": 2048,
        "reaped_tmp_files": 0,
    }

    def test_gc_counters_round_trip(self):
        manifest = RunManifest.build(
            [artifact("a", 1.0)], seed=0, quick=True, jobs=1, gc=dict(self.GC)
        )
        assert manifest.to_dict()["gc"] == self.GC
        loaded = RunManifest.from_json(manifest.to_json())
        assert loaded.gc == self.GC
        assert loaded == manifest

    def test_gc_defaults_to_none(self):
        manifest = RunManifest.build(
            [artifact("a", 1.0)], seed=0, quick=True, jobs=1
        )
        assert manifest.gc is None
        assert manifest.to_dict()["gc"] is None

    def test_old_payload_without_new_fields_still_loads(self):
        # manifests written before this PR had neither gc nor
        # serial_equivalent_wall_time_s; from_dict must stay tolerant
        payload = RunManifest.build(
            [artifact("a", 1.0)], seed=0, quick=True, jobs=1,
            total_wall_time_s=2.0,
        ).to_dict()
        del payload["gc"]
        del payload["serial_equivalent_wall_time_s"]
        loaded = RunManifest.from_dict(payload)
        assert loaded.gc is None
        # the derived quantity is recomputed, not lost
        assert loaded.serial_equivalent_wall_time_s == pytest.approx(1.0)
