"""The typed v2 request/response pair: validation, wire form, identity."""

import pytest

from repro.errors import ExperimentError
from repro.runtime.request import WIRE_VERSION, RunRequest, RunResponse


class TestRunRequestValidation:
    def test_defaults(self):
        request = RunRequest(experiment_id="fig1")
        assert request.quick is True
        assert request.seed == 0
        assert request.cache == "auto"
        assert request.cache_dir is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"experiment_id": ""},
            {"experiment_id": 7},
            {"experiment_id": "fig1", "quick": "yes"},
            {"experiment_id": "fig1", "seed": "0"},
            {"experiment_id": "fig1", "seed": True},
            {"experiment_id": "fig1", "cache": "maybe"},
            {"experiment_id": "fig1", "cache_dir": 5},
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ExperimentError):
            RunRequest(**kwargs)

    def test_frozen(self):
        request = RunRequest(experiment_id="fig1")
        with pytest.raises(AttributeError):
            request.seed = 1

    def test_coalesce_key_excludes_transport(self):
        a = RunRequest(experiment_id="fig1", cache="auto", cache_dir="/a")
        b = RunRequest(experiment_id="fig1", cache="off", cache_dir="/b")
        assert a.coalesce_key == b.coalesce_key == ("fig1", True, 0)

    def test_with_cache(self):
        request = RunRequest(experiment_id="fig1").with_cache("off")
        assert request.cache == "off" and request.cache_dir is None


class TestRunRequestWire:
    def test_round_trip(self):
        request = RunRequest(experiment_id="fig1", quick=False, seed=3)
        assert RunRequest.from_dict(request.to_dict()) == request

    def test_cache_dir_never_travels(self):
        request = RunRequest(experiment_id="fig1", cache_dir="/private")
        assert "cache_dir" not in request.to_dict()

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ExperimentError):
            RunRequest.from_dict({"seed": 0})


class TestRunResponse:
    def _response(self, served_from="computed"):
        from repro.api import run

        artifact = run("fig1", cache="off")
        return RunResponse(
            request=RunRequest(experiment_id="fig1"),
            artifact=artifact,
            served_from=served_from,
        )

    def test_hit_property(self):
        assert self._response("store").hit is True
        assert self._response("computed").hit is False

    def test_wire_round_trip(self):
        response = self._response()
        payload = response.to_dict()
        assert payload["wire_version"] == WIRE_VERSION
        assert RunResponse.from_dict(payload) == response

    def test_wrong_wire_version_refused(self):
        payload = self._response().to_dict()
        payload["wire_version"] = WIRE_VERSION + 1
        with pytest.raises(ExperimentError):
            RunResponse.from_dict(payload)
