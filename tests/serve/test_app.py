"""The serve application: routing, store fast path, coalescing, drain."""

import asyncio
import json

import pytest

from repro import api
from repro.errors import ExperimentError
from repro.runtime.request import WIRE_VERSION, RunRequest, RunResponse
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.http import HttpRequest
from repro.serve.smoke import http_get


def get(path, query=None):
    return HttpRequest(method="GET", path=path, query=query or {}, headers={})


def make_app(**overrides):
    config = dict(jobs=0, max_inflight=16)
    config.update(overrides)
    return ServeApp(ServeConfig(**config))


def handle(app, request):
    return asyncio.run(app.handle(request))


def body_of(response):
    return json.loads(response.body.decode("utf-8"))


class TestServeConfig:
    def test_defaults(self):
        config = ServeConfig()
        assert config.port == 8023
        assert config.jobs == 1
        assert config.max_inflight == 16

    def test_negative_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            ServeConfig(jobs=-1)

    def test_zero_max_inflight_rejected(self):
        with pytest.raises(ExperimentError):
            ServeConfig(max_inflight=0)


class TestRoutes:
    def test_healthz(self):
        response = handle(make_app(), get("/v1/healthz"))
        assert response.status == 200
        assert body_of(response) == {"status": "ok", "wire_version": WIRE_VERSION}

    def test_healthz_reports_draining(self):
        app = make_app()
        app.draining = True
        assert body_of(handle(app, get("/v1/healthz")))["status"] == "draining"

    def test_stats_shape(self):
        app = make_app()
        payload = body_of(handle(app, get("/v1/stats")))
        for field in (
            "requests",
            "hits",
            "memory_hits",
            "misses",
            "coalesced",
            "rejected",
            "errors",
            "malformed",
            "timeouts",
            "inflight",
            "queue_depth",
            "draining",
            "connections",
            "hot",
        ):
            assert field in payload
        assert payload["wire_version"] == WIRE_VERSION
        assert set(payload["latency"]) == {"p50_ms", "p99_ms"}
        for field in ("hits", "misses", "ghost_hits", "resizes", "bytes"):
            assert field in payload["hot"]
        # the stats request itself was counted
        assert payload["requests"] == 2 or payload["requests"] == 1

    def test_unknown_route_is_404(self):
        response = handle(make_app(), get("/v2/run/fig1"))
        assert response.status == 404

    def test_unknown_experiment_is_404(self):
        response = handle(make_app(), get("/v1/run/no-such-figure"))
        assert response.status == 404
        assert "no-such-figure" in body_of(response)["error"]["detail"]

    def test_nested_run_path_is_400(self):
        response = handle(make_app(), get("/v1/run/fig1/extra"))
        assert response.status == 400

    def test_bad_seed_is_400(self):
        response = handle(make_app(), get("/v1/run/fig1", {"seed": "many"}))
        assert response.status == 400
        assert "seed" in body_of(response)["error"]["detail"]

    def test_bad_quick_is_400(self):
        response = handle(make_app(), get("/v1/run/fig1", {"quick": "maybe"}))
        assert response.status == 400

    def test_run_rejected_while_draining(self):
        app = make_app()
        app.draining = True
        response = handle(app, get("/v1/run/fig1"))
        assert response.status == 503
        assert response.headers.get("Retry-After") == "1"


class TestRunByteIdentity:
    def test_warm_hit_serves_offline_bytes(self):
        api.run("fig1")  # compute and store
        warm = api.run("fig1")  # the offline warm-read oracle
        app = make_app()
        response = handle(app, get("/v1/run/fig1"))
        assert response.status == 200
        assert response.body == (warm.to_json() + "\n").encode("utf-8")
        assert response.headers["X-Repro-Served-From"] == "store"
        assert response.headers["X-Repro-Wire-Version"] == str(WIRE_VERSION)
        assert app.stats.hits == 1 and app.stats.misses == 0

    def test_cold_miss_computes_then_memory_hits(self):
        app = make_app()
        first = handle(app, get("/v1/run/fig1"))
        second = handle(app, get("/v1/run/fig1"))
        assert first.status == second.status == 200
        assert first.headers["X-Repro-Served-From"] == "computed"
        # the computed response was admitted to the hot tier: the
        # repeat is a memory hit, byte-identical by construction
        assert second.headers["X-Repro-Served-From"] == "memory"
        assert first.body == second.body
        assert app.stats.misses == 1 and app.stats.memory_hits == 1

    def test_hot_tier_disabled_serves_from_store(self):
        app = make_app(hot_bytes=0)
        first = handle(app, get("/v1/run/fig1"))
        second = handle(app, get("/v1/run/fig1"))
        assert first.headers["X-Repro-Served-From"] == "computed"
        assert second.headers["X-Repro-Served-From"] == "store"
        assert first.body == second.body
        assert app.stats.memory_hits == 0 and app.stats.hits == 1

    def test_served_body_matches_offline_warm_read(self):
        app = make_app()
        served = handle(app, get("/v1/run/fig1", {"seed": "5"}))
        warm = api.run("fig1", seed=5)
        assert served.body == (warm.to_json() + "\n").encode("utf-8")

    def test_digest_header_names_the_store_entry(self):
        from repro.cache.store import cache_key_for

        app = make_app()
        response = handle(app, get("/v1/run/fig1"))
        expected = cache_key_for("fig1", True, 0).digest
        assert response.headers["X-Repro-Cache-Digest"] == expected


def gated_dispatcher(app, gate, calls):
    """Replace the app's dispatcher with a gate-controlled fake that
    still returns a real RunResponse (computed once, inline)."""
    from repro.runtime.runner import execute

    base = execute(RunRequest(experiment_id="fig1", cache="off"))

    async def dispatch(request):
        calls.append(request.coalesce_key)
        await gate.wait()
        return RunResponse(
            request=request, artifact=base.artifact, served_from="computed"
        )

    app._dispatcher = lambda: dispatch
    return base


def track_arrivals(app):
    """Count requests reaching the coalescer: the store probe runs on an
    executor, so arrival is no longer synchronous with ``handle`` — a
    test must wait for stragglers before opening the dispatch gate, or a
    late duplicate would start its own computation instead of riding the
    leader's."""
    class CountingCoalescer:
        def __init__(self, inner):
            self._inner = inner
            self.arrivals = []

        def __len__(self):
            return len(self._inner)

        def __contains__(self, key):
            return key in self._inner

        def pending(self):
            return self._inner.pending()

        async def run(self, key, factory):
            self.arrivals.append(key)
            return await self._inner.run(key, factory)

    app.coalescer = CountingCoalescer(app.coalescer)
    return app.coalescer.arrivals


class TestCoalescingAndAdmission:
    def test_duplicate_misses_coalesce_to_one_computation(self):
        async def go():
            app = make_app()
            gate = asyncio.Event()
            calls = []
            gated_dispatcher(app, gate, calls)
            arrivals = track_arrivals(app)
            tasks = [
                asyncio.create_task(app.handle(get("/v1/run/fig1")))
                for _ in range(4)
            ]
            while len(arrivals) < 4:
                await asyncio.sleep(0)
            gate.set()
            responses = await asyncio.gather(*tasks)
            assert all(r.status == 200 for r in responses)
            served = sorted(r.headers["X-Repro-Served-From"] for r in responses)
            assert served == ["coalesced", "coalesced", "coalesced", "computed"]
            bodies = {r.body for r in responses}
            assert len(bodies) == 1  # followers get the leader's bytes
            assert len(calls) == 1
            assert app.stats.misses == 1 and app.stats.coalesced == 3

        asyncio.run(go())

    def test_excess_distinct_misses_are_429(self):
        async def go():
            app = make_app(max_inflight=1)
            gate = asyncio.Event()
            calls = []
            gated_dispatcher(app, gate, calls)
            arrivals = track_arrivals(app)
            leader = asyncio.create_task(
                app.handle(get("/v1/run/fig1", {"seed": "1"}))
            )
            while len(arrivals) < 1:
                await asyncio.sleep(0)
            # a second *distinct* computation would exceed max_inflight
            rejected = await app.handle(get("/v1/run/fig1", {"seed": "2"}))
            assert rejected.status == 429
            assert rejected.headers.get("Retry-After") == "1"
            assert app.stats.rejected == 1
            # but a duplicate of the in-flight key is always admitted
            follower = asyncio.create_task(
                app.handle(get("/v1/run/fig1", {"seed": "1"}))
            )
            while len(arrivals) < 2:
                await asyncio.sleep(0)
            gate.set()
            leader_response, follower_response = await asyncio.gather(
                leader, follower
            )
            assert leader_response.status == 200
            assert follower_response.status == 200
            assert follower_response.headers["X-Repro-Served-From"] == "coalesced"
            assert len(calls) == 1

        asyncio.run(go())


class TestDrain:
    def test_drain_waits_for_inflight_work(self):
        async def go():
            app = make_app()
            gate = asyncio.Event()
            calls = []
            gated_dispatcher(app, gate, calls)
            task = asyncio.create_task(app.handle(get("/v1/run/fig1")))
            while len(app.coalescer) == 0:
                await asyncio.sleep(0)
            drainer = asyncio.create_task(app.drain())
            await asyncio.sleep(0)
            assert app.draining and not drainer.done()
            gate.set()
            await drainer
            response = await task
            assert response.status == 200
            # post-drain run requests are refused
            refused = await app.handle(get("/v1/run/fig1", {"seed": "9"}))
            assert refused.status == 503

        asyncio.run(go())


class TestOverSocket:
    def test_connection_handler_end_to_end(self):
        async def go():
            app = make_app()
            server = await app.start_server("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                healthz = await http_get("127.0.0.1", port, "/v1/healthz")
                assert healthz.status == 200
                assert json.loads(healthz.body)["status"] == "ok"
                run = await http_get("127.0.0.1", port, "/v1/run/fig1?seed=0")
                assert run.status == 200
                assert run.headers["x-repro-served-from"] == "computed"
                assert int(run.headers["content-length"]) == len(run.body)
                missing = await http_get("127.0.0.1", port, "/nope")
                assert missing.status == 404
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())

    def test_silent_client_answered_408_not_leaked(self, monkeypatch):
        # A client that connects and sends nothing must not park its
        # handler in readuntil forever (one leaked task + socket per
        # such client); the read timeout answers 408 and closes.
        monkeypatch.setattr("repro.serve.app.READ_TIMEOUT_S", 0.05)

        async def go():
            app = make_app()
            server = await app.start_server("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                # send nothing; the daemon must time the read out
                raw = await asyncio.wait_for(reader.read(), timeout=5)
                writer.close()
                await writer.wait_closed()
                assert raw.startswith(b"HTTP/1.1 408 Request Timeout")
                assert app._connections == set()  # handler fully retired
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())

    def test_drain_lets_inflight_response_finish(self):
        # The coalescer future resolves before the handler writes the
        # response; drain must also await the open connection tasks, or
        # shutdown truncates responses whose computation already ran.
        async def go():
            app = make_app()
            gate = asyncio.Event()
            calls = []
            gated_dispatcher(app, gate, calls)
            server = await app.start_server("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"GET /v1/run/fig1 HTTP/1.1\r\n\r\n")
                await writer.drain()
                while len(app.coalescer) == 0:
                    await asyncio.sleep(0)
                # stop accepting, but don't wait_closed here: on 3.12+
                # it waits for handlers, which wait for the gate
                server.close()
                drainer = asyncio.create_task(app.drain())
                await asyncio.sleep(0)
                gate.set()
                await drainer
                # the drained daemon already wrote the complete response
                raw = await asyncio.wait_for(reader.read(), timeout=5)
                writer.close()
                await writer.wait_closed()
                head, _sep, body = raw.partition(b"\r\n\r\n")
                assert head.startswith(b"HTTP/1.1 200 OK")
                length = next(
                    int(line.split(b":")[1])
                    for line in head.split(b"\r\n")
                    if line.lower().startswith(b"content-length:")
                )
                assert len(body) == length  # nothing truncated
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())

    def test_malformed_request_answered_400_over_socket(self):
        async def go():
            app = make_app()
            server = await app.start_server("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"BREW /v1/healthz HTTP/1.1\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                assert raw.startswith(b"HTTP/1.1 405 ")
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())
