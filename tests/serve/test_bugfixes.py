"""Regression pins for the PR-9 serve-layer bugfix sweep.

Each test here fails against the pre-PR serve code:

* an unterminated oversized request line used to buffer up to the
  64 KiB ``StreamReader`` default and park until the 10 s read timeout
  instead of answering 400 promptly (``limit=`` was never passed to
  ``asyncio.start_server``);
* the 408 and parse-error response paths wrote the error body and
  closed without ``await writer.drain()``, so a slow reader could get a
  reset instead of the response;
* parse-level failures never reached ``ServeStats`` (the counters only
  saw requests that parsed), and ``queue_depth`` was a constant
  duplicate of ``inflight`` rather than the number of waiting
  followers.
"""

import asyncio
import json

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.http import MAX_LINE_BYTES, HttpRequest
from repro.serve.smoke import read_http_response


def make_app(**overrides):
    config = dict(jobs=0, max_inflight=16)
    config.update(overrides)
    return ServeApp(ServeConfig(**config))


async def serving(app):
    server = await app.start_server("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    return server, port


class RecordingWriter:
    """A StreamWriter stand-in that records the call sequence, so a test
    can assert the transport was drained between write and close."""

    def __init__(self):
        self.events = []
        self.data = b""

    def write(self, data):
        self.events.append("write")
        self.data += data

    async def drain(self):
        self.events.append("drain")

    def close(self):
        self.events.append("close")

    async def wait_closed(self):
        self.events.append("wait_closed")


class TestStreamLayerLimit:
    def test_oversized_line_answered_400_promptly(self):
        # Pre-PR the daemon's reader happily buffered this (it is under
        # the 64 KiB stream default) and sat in readuntil until the 10 s
        # read timeout; with limit=MAX_LINE_BYTES on the server socket
        # the 400 arrives as soon as the cap is crossed.
        async def go():
            app = make_app()
            server, port = await serving(app)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"A" * (MAX_LINE_BYTES + 1024))  # no CRLF ever
                await writer.drain()
                reply = await asyncio.wait_for(
                    read_http_response(reader), timeout=5
                )
                assert reply.status == 400
                assert "too long" in json.loads(reply.body)["error"]["detail"]
                assert reply.headers["connection"] == "close"
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())


class TestErrorPathsDrain:
    def test_parse_error_response_drained_before_close(self):
        async def go():
            app = make_app()
            reader = asyncio.StreamReader()
            reader.feed_data(b"BREW / HTTP/1.1\r\n\r\n")
            reader.feed_eof()
            writer = RecordingWriter()
            await app.handle_connection(reader, writer)
            assert writer.data.startswith(b"HTTP/1.1 405 ")
            assert "drain" in writer.events
            assert writer.events.index("drain") > writer.events.index("write")
            assert writer.events.index("drain") < writer.events.index("close")

        asyncio.run(go())

    def test_408_response_drained_before_close(self, monkeypatch):
        monkeypatch.setattr("repro.serve.app.READ_TIMEOUT_S", 0.05)

        async def go():
            app = make_app()
            reader = asyncio.StreamReader()  # never fed: a silent client
            writer = RecordingWriter()
            await app.handle_connection(reader, writer)
            assert writer.data.startswith(b"HTTP/1.1 408 ")
            assert "drain" in writer.events
            assert writer.events.index("drain") > writer.events.index("write")
            assert writer.events.index("drain") < writer.events.index("close")

        asyncio.run(go())


class TestParseFailureStats:
    def test_malformed_request_counted(self):
        async def go():
            app = make_app()
            server, port = await serving(app)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"nonsense\r\n\r\n")
                await writer.drain()
                reply = await read_http_response(reader)
                assert reply.status == 400
                writer.close()
                await writer.wait_closed()
                # pre-PR: requests == malformed == 0 — the failure never
                # reached the stats at all
                assert app.stats.requests == 1
                assert app.stats.malformed == 1
                assert app.stats.timeouts == 0
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())

    def test_read_timeout_counted(self, monkeypatch):
        monkeypatch.setattr("repro.serve.app.READ_TIMEOUT_S", 0.05)

        async def go():
            app = make_app()
            server, port = await serving(app)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                reply = await asyncio.wait_for(
                    read_http_response(reader), timeout=5
                )
                assert reply.status == 408
                writer.close()
                await writer.wait_closed()
                assert app.stats.requests == 1
                assert app.stats.timeouts == 1
                assert app.stats.malformed == 0
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())


class TestQueueDepth:
    def test_queue_depth_is_waiting_followers_not_inflight(self):
        # pre-PR /v1/stats reported queue_depth == inflight always; the
        # gauge must count followers parked on a leader's computation.
        async def go():
            from repro.runtime.request import RunRequest, RunResponse
            from repro.runtime.runner import execute

            app = make_app()
            gate = asyncio.Event()
            base = execute(RunRequest(experiment_id="fig1", cache="off"))

            async def dispatch(request):
                await gate.wait()
                return RunResponse(
                    request=request,
                    artifact=base.artifact,
                    served_from="computed",
                )

            app._dispatcher = lambda: dispatch

            def get(path):
                return HttpRequest(method="GET", path=path, query={}, headers={})

            tasks = [
                asyncio.create_task(app.handle(get("/v1/run/fig1")))
                for _ in range(3)
            ]
            while app.coalescer.waiting < 2:
                await asyncio.sleep(0)
            payload = json.loads(app._handle_stats().body)
            assert payload["inflight"] == 1  # one distinct computation
            assert payload["queue_depth"] == 2  # two parked followers
            gate.set()
            responses = await asyncio.gather(*tasks)
            assert all(r.status == 200 for r in responses)
            # queue drained with the computation
            payload = json.loads(app._handle_stats().body)
            assert payload["inflight"] == 0 and payload["queue_depth"] == 0

        asyncio.run(go())
