"""In-flight coalescing: one computation per key, shared outcomes."""

import asyncio

import pytest

from repro.serve.coalesce import Coalescer


class TestCoalescer:
    def test_single_caller_is_not_coalesced(self):
        async def go():
            coalescer = Coalescer()

            async def factory():
                return 42

            result, coalesced = await coalescer.run("k", factory)
            assert (result, coalesced) == (42, False)
            assert len(coalescer) == 0

        asyncio.run(go())

    def test_followers_ride_the_leader(self):
        async def go():
            coalescer = Coalescer()
            gate = asyncio.Event()
            calls = 0

            async def factory():
                nonlocal calls
                calls += 1
                await gate.wait()
                return "artifact"

            tasks = [
                asyncio.create_task(coalescer.run("k", factory))
                for _ in range(5)
            ]
            while "k" not in coalescer:
                await asyncio.sleep(0)
            assert len(coalescer) == 1
            gate.set()
            outcomes = await asyncio.gather(*tasks)
            assert calls == 1
            assert all(result == "artifact" for result, _ in outcomes)
            assert sorted(coalesced for _, coalesced in outcomes) == [
                False,
                True,
                True,
                True,
                True,
            ]
            assert len(coalescer) == 0

        asyncio.run(go())

    def test_distinct_keys_run_independently(self):
        async def go():
            coalescer = Coalescer()

            async def make(value):
                return value

            outcomes = await asyncio.gather(
                coalescer.run("a", lambda: make(1)),
                coalescer.run("b", lambda: make(2)),
            )
            assert outcomes == [(1, False), (2, False)]

        asyncio.run(go())

    def test_failure_reaches_leader_and_followers(self):
        async def go():
            coalescer = Coalescer()
            gate = asyncio.Event()

            async def factory():
                await gate.wait()
                raise ValueError("boom")

            tasks = [
                asyncio.create_task(coalescer.run("k", factory))
                for _ in range(3)
            ]
            while "k" not in coalescer:
                await asyncio.sleep(0)
            gate.set()
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            assert len(outcomes) == 3
            assert all(isinstance(o, ValueError) for o in outcomes)
            # a failed key is retryable: the map is clean again
            assert len(coalescer) == 0

        asyncio.run(go())

    def test_key_is_reusable_after_completion(self):
        async def go():
            coalescer = Coalescer()

            async def make(value):
                return value

            first, _ = await coalescer.run("k", lambda: make(1))
            second, coalesced = await coalescer.run("k", lambda: make(2))
            assert (first, second, coalesced) == (1, 2, False)

        asyncio.run(go())

    def test_pending_snapshot_for_drain(self):
        async def go():
            coalescer = Coalescer()
            gate = asyncio.Event()

            async def factory():
                await gate.wait()
                return "done"

            task = asyncio.create_task(coalescer.run("k", factory))
            while "k" not in coalescer:
                await asyncio.sleep(0)
            pending = list(coalescer.pending())
            assert len(pending) == 1
            gate.set()
            await task
            assert await pending[0] == "done"

        asyncio.run(go())


def test_run_requires_event_loop():
    coalescer = Coalescer()

    async def factory():
        return None

    coroutine = coalescer.run("k", factory)
    with pytest.raises(RuntimeError):
        coroutine.send(None)
    coroutine.close()
