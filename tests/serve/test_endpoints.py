"""The batch (`/v1/run-all`) and Prometheus (`/v1/metrics`) endpoints."""

import asyncio
import json

from repro import api
from repro.runtime.request import WIRE_VERSION
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.http import HttpRequest
from repro.serve.smoke import parse_prometheus


def get(path, query=None):
    return HttpRequest(method="GET", path=path, query=query or {}, headers={})


def make_app(**overrides):
    config = dict(jobs=0, max_inflight=16)
    config.update(overrides)
    return ServeApp(ServeConfig(**config))


def handle(app, request):
    return asyncio.run(app.handle(request))


def body_of(response):
    return json.loads(response.body.decode("utf-8"))


class TestRunAll:
    def test_named_experiments_batch(self):
        app = make_app()
        response = handle(
            app, get("/v1/run-all", {"experiments": "fig1", "seed": "0"})
        )
        assert response.status == 200
        payload = body_of(response)
        assert payload["wire_version"] == WIRE_VERSION
        assert payload["quick"] is True and payload["seed"] == 0
        assert set(payload["artifacts"]) == {"fig1"}
        assert payload["errors"] == {}
        assert payload["served_from"]["fig1"] == "computed"
        assert payload["digests"]["fig1"]
        # each artifact is exactly the single-run body, parsed
        single = handle(app, get("/v1/run/fig1", {"seed": "0"}))
        assert payload["artifacts"]["fig1"] == json.loads(single.body)

    def test_default_is_whole_registry(self, monkeypatch):
        from repro.experiments import registry

        trimmed = {
            eid: registry.EXPERIMENTS[eid] for eid in ("fig1", "lemma1")
        }
        monkeypatch.setattr(registry, "EXPERIMENTS", trimmed)
        app = make_app()
        payload = body_of(handle(app, get("/v1/run-all")))
        assert set(payload["artifacts"]) == {"fig1", "lemma1"}
        assert payload["errors"] == {}

    def test_unknown_experiment_is_a_per_leg_error(self):
        app = make_app()
        response = handle(
            app, get("/v1/run-all", {"experiments": "fig1,no-such-figure"})
        )
        assert response.status == 200  # the batch itself succeeded
        payload = body_of(response)
        assert set(payload["artifacts"]) == {"fig1"}
        assert payload["errors"]["no-such-figure"]["status"] == 404
        assert "no-such-figure" in payload["errors"]["no-such-figure"]["detail"]

    def test_duplicate_and_blank_names_collapsed(self):
        app = make_app()
        payload = body_of(
            handle(app, get("/v1/run-all", {"experiments": "fig1, ,fig1,"}))
        )
        assert set(payload["artifacts"]) == {"fig1"}

    def test_bad_seed_is_400(self):
        response = handle(make_app(), get("/v1/run-all", {"seed": "many"}))
        assert response.status == 400

    def test_rejected_while_draining(self):
        app = make_app()
        app.draining = True
        response = handle(app, get("/v1/run-all"))
        assert response.status == 503

    def test_batch_shares_admission_control(self, tmp_path):
        # max_inflight=1: a batch of two cold keys cannot jump the
        # queue — one leg computes, the other surfaces as a 429 entry.
        # The store must be empty or warm hits bypass admission control
        # (by design), so point the app at a fresh cache dir.
        app = make_app(
            max_inflight=1, hot_bytes=0, cache_dir=str(tmp_path / "store")
        )

        async def go():
            gate = asyncio.Event()
            from repro.runtime.request import RunRequest, RunResponse
            from repro.runtime.runner import execute

            base = execute(RunRequest(experiment_id="fig1", cache="off"))

            async def dispatch(request):
                await gate.wait()
                return RunResponse(
                    request=request,
                    artifact=base.artifact,
                    served_from="computed",
                )

            app._dispatcher = lambda: dispatch
            task = asyncio.create_task(
                app.handle(get("/v1/run-all", {"experiments": "fig1,lemma1"}))
            )
            while len(app.coalescer) == 0:
                await asyncio.sleep(0)
            gate.set()
            return await task

        response = asyncio.run(go())
        payload = body_of(response)
        statuses = {
            eid: err["status"] for eid, err in payload["errors"].items()
        }
        assert len(payload["artifacts"]) == 1
        assert list(statuses.values()) == [429]

    def test_batch_served_from_memory_on_repeat(self):
        app = make_app()
        handle(app, get("/v1/run-all", {"experiments": "fig1"}))
        payload = body_of(
            handle(app, get("/v1/run-all", {"experiments": "fig1"}))
        )
        assert payload["served_from"]["fig1"] == "memory"

    def test_batch_matches_offline_bytes(self):
        warm = api.run("fig1")  # compute + store, then warm-read form
        warm = api.run("fig1")
        payload = body_of(
            handle(make_app(), get("/v1/run-all", {"experiments": "fig1"}))
        )
        assert payload["artifacts"]["fig1"] == json.loads(warm.to_json())


class TestMetrics:
    def test_prometheus_content_type_and_parse(self):
        app = make_app()
        handle(app, get("/v1/run/fig1"))
        handle(app, get("/v1/run/fig1"))
        response = handle(app, get("/v1/metrics"))
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        samples = parse_prometheus(response.body.decode("utf-8"))
        assert samples["repro_serve_requests_total"] == 3.0
        assert samples["repro_serve_misses_total"] == 1.0
        assert samples["repro_serve_memory_hits_total"] == 1.0
        assert samples["repro_serve_hot_hits_total"] == 1.0
        assert samples["repro_serve_inflight"] == 0.0
        assert samples["repro_serve_draining"] == 0.0
        assert samples["repro_serve_hot_bytes"] > 0.0
        assert samples["repro_serve_connections_open"] == 0.0

    def test_latency_summary_quantiles(self):
        app = make_app()
        handle(app, get("/v1/healthz"))
        response = handle(app, get("/v1/metrics"))
        samples = parse_prometheus(response.body.decode("utf-8"))
        assert 'repro_serve_latency_seconds{quantile="0.5"}' in samples
        assert 'repro_serve_latency_seconds{quantile="0.99"}' in samples
        assert samples["repro_serve_latency_seconds_count"] >= 1.0
        assert samples["repro_serve_latency_seconds_sum"] >= 0.0

    def test_help_and_type_comments_present(self):
        app = make_app()
        text = handle(app, get("/v1/metrics")).body.decode("utf-8")
        assert "# HELP repro_serve_requests_total" in text
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "# TYPE repro_serve_inflight gauge" in text
        assert "# TYPE repro_serve_latency_seconds summary" in text

    def test_draining_gauge_flips(self):
        app = make_app()
        app.draining = True
        samples = parse_prometheus(
            handle(app, get("/v1/metrics")).body.decode("utf-8")
        )
        assert samples["repro_serve_draining"] == 1.0
