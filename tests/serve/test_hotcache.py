"""The adaptive in-memory hot tier: LRU, ghost adaptation, invalidation."""

import asyncio
import json

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.hotcache import ADAPT_INTERVAL, HotCache
from repro.serve.http import HttpRequest


def get(path, query=None):
    return HttpRequest(method="GET", path=path, query=query or {}, headers={})


def make_app(**overrides):
    config = dict(jobs=0, max_inflight=16)
    config.update(overrides)
    return ServeApp(ServeConfig(**config))


def handle(app, request):
    return asyncio.run(app.handle(request))


def fill(cache, count, size=100, prefix="d"):
    for i in range(count):
        cache.put(f"{prefix}{i:04d}", b"x" * size)


class TestHotCacheBasics:
    def test_get_put_roundtrip(self):
        cache = HotCache(4096)
        cache.put("abc", b"body")
        assert cache.get("abc") == b"body"
        assert cache.hits == 1 and cache.misses == 0
        assert len(cache) == 1 and cache.size_bytes == 4

    def test_miss_counts(self):
        cache = HotCache(4096)
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_overwrite_replaces_bytes_and_size(self):
        cache = HotCache(4096)
        cache.put("abc", b"x" * 100)
        cache.put("abc", b"y" * 10)
        assert cache.get("abc") == b"y" * 10
        assert cache.size_bytes == 10
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = HotCache(4096)
        cache.target_bytes = 250  # room for two 100-byte entries
        fill(cache, 2)
        assert cache.get("d0000") == b"x" * 100  # refresh d0000
        cache.put("d0002", b"x" * 100)  # evicts d0001, the LRU
        assert "d0001" not in cache
        assert "d0000" in cache and "d0002" in cache
        assert cache.evictions == 1

    def test_capacity_zero_disables(self):
        cache = HotCache(0)
        cache.put("abc", b"body")
        assert cache.get("abc") is None
        assert len(cache) == 0

    def test_oversized_body_not_admitted(self):
        cache = HotCache(64)
        cache.put("abc", b"x" * 65)
        assert "abc" not in cache

    def test_invalidate_removes_both_segments(self):
        cache = HotCache(4096)
        cache.target_bytes = 150
        fill(cache, 2)  # d0000 evicted to ghost
        assert cache._ghost  # sanity: something on the ghost list
        cache.invalidate("d0001")
        cache.invalidate("d0000")
        assert "d0001" not in cache
        assert cache.get("d0000") is None
        assert cache.ghost_hits == 0  # invalidation left no ghost trace

    def test_snapshot_shape(self):
        snapshot = HotCache(4096).snapshot()
        for field in (
            "entries",
            "bytes",
            "target_bytes",
            "capacity_bytes",
            "ghost_entries",
            "hits",
            "misses",
            "ghost_hits",
            "evictions",
            "resizes",
        ):
            assert field in snapshot


class TestGhostAdaptation:
    def test_evicted_entry_lands_on_ghost_list(self):
        cache = HotCache(4096)
        cache.target_bytes = 150
        fill(cache, 2)
        assert "d0000" not in cache
        assert cache.get("d0000") is None
        assert cache.ghost_hits == 1

    def test_ghost_hit_grows_target(self):
        cache = HotCache(4096)
        cache.target_bytes = 150
        fill(cache, 2)  # d0000 evicted (100 bytes) to ghost
        before = cache.target_bytes
        cache.get("d0000")  # re-reference shortly after eviction
        assert cache.target_bytes == before + 100
        assert cache.resizes == 1

    def test_growth_capped_at_capacity(self):
        cache = HotCache(256)
        cache.target_bytes = 150
        fill(cache, 2)
        for _ in range(5):
            cache.get("d0000")  # only the first is a ghost hit
        assert cache.target_bytes <= cache.capacity_bytes

    def test_promotion_completes_on_reput(self):
        cache = HotCache(4096)
        cache.target_bytes = 150
        fill(cache, 2)
        cache.get("d0000")  # ghost hit: target grew to 250
        cache.put("d0000", b"x" * 100)  # the caller re-serves and re-puts
        # both entries now fit under the grown target
        assert "d0000" in cache and "d0001" in cache

    def test_quiet_window_decays_target(self):
        cache = HotCache(4096)
        cache.put("d0", b"x")
        grown = cache.target_bytes
        for _ in range(ADAPT_INTERVAL):
            cache.get("d0")  # hits only: no ghost evidence
        assert cache.target_bytes < grown
        assert cache.resizes >= 1

    def test_decay_floors_at_min_target(self):
        cache = HotCache(4096)
        cache.put("d0", b"x")
        for _ in range(ADAPT_INTERVAL * 50):
            cache.get("d0")
        assert cache.target_bytes == cache.min_target_bytes

    def test_ghost_list_bounded(self):
        cache = HotCache(1 << 20, ghost_entries=4)
        cache.target_bytes = 150
        fill(cache, 50)
        assert len(cache._ghost) <= 4


class TestAppMemoryTier:
    def test_memory_hit_bytes_identical_to_store_hit(self):
        store_app = make_app(hot_bytes=0)
        hot_app = make_app()
        computed = handle(hot_app, get("/v1/run/fig1"))
        assert computed.headers["X-Repro-Served-From"] == "computed"
        store = handle(store_app, get("/v1/run/fig1"))
        assert store.headers["X-Repro-Served-From"] == "store"
        memory = handle(hot_app, get("/v1/run/fig1"))
        assert memory.headers["X-Repro-Served-From"] == "memory"
        assert memory.body == store.body == computed.body
        assert (
            memory.headers["X-Repro-Cache-Digest"]
            == store.headers["X-Repro-Cache-Digest"]
        )

    def test_memory_hit_skips_fingerprint_and_store(self, monkeypatch):
        app = make_app()
        first = handle(app, get("/v1/run/fig1"))
        assert first.status == 200

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("slow path touched on a memory hit")

        monkeypatch.setattr("repro.serve.app.cache_key_for", boom)
        monkeypatch.setattr(app.cache, "get", boom)
        memory = handle(app, get("/v1/run/fig1"))
        assert memory.status == 200
        assert memory.headers["X-Repro-Served-From"] == "memory"
        assert memory.body == first.body

    def test_store_hit_populates_hot_tier(self):
        app = make_app()
        cold = make_app(hot_bytes=0)
        handle(cold, get("/v1/run/fig1"))  # compute into the shared store
        first = handle(app, get("/v1/run/fig1"))
        assert first.headers["X-Repro-Served-From"] == "store"
        second = handle(app, get("/v1/run/fig1"))
        assert second.headers["X-Repro-Served-From"] == "memory"
        assert second.body == first.body

    def test_digest_change_invalidates_memory_hits(self, monkeypatch):
        from repro.cache import fingerprint
        from repro.cache.store import CacheKey, cache_key_for

        app = make_app()
        first = handle(app, get("/v1/run/fig1"))
        assert handle(app, get("/v1/run/fig1")).headers[
            "X-Repro-Served-From"
        ] == "memory"

        # Simulate a code edit: the key's digest changes, and (as the
        # fingerprint module documents for mutate-and-refingerprint
        # flows) the fingerprint memos are cleared.
        real_key = cache_key_for("fig1", True, 0)
        edited = CacheKey(
            experiment_id="fig1",
            quick=True,
            seed=0,
            fingerprint="0" * 64,
        )

        def edited_key_for(experiment_id, quick, seed):
            return edited

        monkeypatch.setattr("repro.serve.app.cache_key_for", edited_key_for)
        monkeypatch.setattr("repro.cache.store.cache_key_for", edited_key_for)
        fingerprint.clear_fingerprint_caches()

        after = handle(app, get("/v1/run/fig1"))
        # The hint generation moved: the request went back through the
        # fingerprinter, derived the new digest, missed the hot tier
        # and the store, and recomputed.
        assert after.headers["X-Repro-Served-From"] == "computed"
        assert after.headers["X-Repro-Cache-Digest"] == edited.digest
        assert after.headers["X-Repro-Cache-Digest"] != real_key.digest
        # the same deterministic code ran: identical payload modulo the
        # recorded compute time of the fresh run
        before_payload = json.loads(first.body)
        after_payload = json.loads(after.body)
        for payload in (before_payload, after_payload):
            payload.pop("saved_wall_time_s", None)
            payload.pop("wall_time_s", None)
        assert after_payload == before_payload
        # The old entry may linger in the LRU (content-addressed, so it
        # is merely unreachable, not wrong) — repeats are now served
        # from memory under the *new* digest.
        repeat = handle(app, get("/v1/run/fig1"))
        assert repeat.headers["X-Repro-Served-From"] == "memory"
        assert repeat.headers["X-Repro-Cache-Digest"] == edited.digest

    def test_generation_bump_alone_keeps_serving_correctly(self):
        from repro.cache import fingerprint

        app = make_app()
        handle(app, get("/v1/run/fig1"))
        fingerprint.clear_fingerprint_caches()
        # No code change: the re-derived digest matches, the hot entry
        # is found again under the same digest, service continues.
        response = handle(app, get("/v1/run/fig1"))
        assert response.status == 200
        assert response.headers["X-Repro-Served-From"] == "memory"
