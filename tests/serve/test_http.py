"""The stdlib HTTP layer: request parsing, limits, response rendering."""

import asyncio

import pytest

from repro.serve.http import (
    MAX_HEADER_LINES,
    MAX_LINE_BYTES,
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
    render_response,
)


def parse(raw: bytes, limit: int | None = None) -> HttpRequest | None:
    async def go():
        reader = (
            asyncio.StreamReader() if limit is None
            else asyncio.StreamReader(limit=limit)
        )
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(
            b"GET /v1/run/fig1?quick=true&seed=3 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Accept: application/json\r\n"
            b"\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/v1/run/fig1"
        assert request.query == {"quick": "true", "seed": "3"}
        assert request.headers["host"] == "localhost"
        assert request.headers["accept"] == "application/json"

    def test_percent_encoded_path_is_decoded(self):
        request = parse(b"GET /v1/run/fig%311 HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/run/fig11"

    def test_blank_query_values_kept(self):
        request = parse(b"GET /v1/run/fig1?quick HTTP/1.1\r\n\r\n")
        assert request.query == {"quick": ""}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_request_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET /v1/healthz HTTP/1.1\r\nHost: local")
        assert exc.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET /v1/healthz\r\n\r\n")
        assert exc.value.status == 400

    def test_non_http_version_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET /v1/healthz GOPHER/7\r\n\r\n")
        assert exc.value.status == 400

    def test_post_is_405(self):
        with pytest.raises(HttpError) as exc:
            parse(b"POST /v1/run/fig1 HTTP/1.1\r\n\r\n")
        assert exc.value.status == 405

    def test_header_without_colon_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\nnot-a-header\r\n\r\n")
        assert exc.value.status == 400

    def test_too_many_headers_is_400(self):
        headers = b"".join(
            b"X-H%d: v\r\n" % i for i in range(MAX_HEADER_LINES + 1)
        )
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert exc.value.status == 400

    def test_oversized_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n")
        assert exc.value.status == 400

    def line_of_content_length(self, content_len: int) -> bytes:
        prefix, suffix = b"GET /v1/run/", b" HTTP/1.1"
        pad = content_len - len(prefix) - len(suffix)
        assert pad > 0
        return prefix + b"a" * pad + suffix

    def test_line_content_exactly_at_cap_accepted(self):
        # The cap is on line *content*: the CRLF terminator must not
        # count against it (the pre-fix check charged it 2 bytes).
        line = self.line_of_content_length(MAX_LINE_BYTES)
        request = parse(line + b"\r\n\r\n")
        assert request is not None
        assert request.path.startswith("/v1/run/aaa")

    def test_line_content_one_past_cap_is_400(self):
        line = self.line_of_content_length(MAX_LINE_BYTES + 1)
        with pytest.raises(HttpError) as exc:
            parse(line + b"\r\n\r\n")
        assert exc.value.status == 400

    def test_at_cap_accepted_under_stream_layer_limit(self):
        # Same boundary through a reader configured like the daemon's
        # listening socket (limit=MAX_LINE_BYTES): readuntil tolerates a
        # separator found exactly at the limit.
        line = self.line_of_content_length(MAX_LINE_BYTES)
        request = parse(line + b"\r\n\r\n", limit=MAX_LINE_BYTES)
        assert request is not None

    def test_stream_layer_limit_rejects_unterminated_line(self):
        # No CRLF anywhere: with the daemon's stream limit the reader
        # refuses to buffer past the cap and the parse fails fast with a
        # 400 instead of waiting for a terminator that never comes.
        with pytest.raises(HttpError) as exc:
            parse(b"A" * (MAX_LINE_BYTES + 1024), limit=MAX_LINE_BYTES)
        assert exc.value.status == 400


class TestHttpRequestKeepAlive:
    def req(self, version="HTTP/1.1", connection=None):
        headers = {} if connection is None else {"connection": connection}
        return HttpRequest(
            method="GET", path="/", query={}, headers=headers, version=version
        )

    def test_http11_defaults_to_keep_alive(self):
        assert self.req().keep_alive

    def test_http11_connection_close(self):
        assert not self.req(connection="close").keep_alive
        assert not self.req(connection=" Close ").keep_alive

    def test_http10_defaults_to_close(self):
        assert not self.req(version="HTTP/1.0").keep_alive

    def test_http10_explicit_keep_alive(self):
        assert self.req(version="HTTP/1.0", connection="keep-alive").keep_alive

    def test_version_parsed_from_request_line(self):
        assert parse(b"GET / HTTP/1.0\r\n\r\n").version == "HTTP/1.0"
        assert parse(b"GET / HTTP/1.1\r\n\r\n").version == "HTTP/1.1"


class TestRenderResponse:
    def test_status_line_and_framing(self):
        wire = render_response(HttpResponse(status=200, body=b'{"ok": true}\n'))
        head, _, body = wire.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        assert lines[0] == b"HTTP/1.1 200 OK"
        assert b"Content-Type: application/json" in lines
        assert b"Content-Length: 13" in lines
        assert b"Connection: close" in lines
        assert body == b'{"ok": true}\n'

    def test_extra_headers_rendered(self):
        wire = render_response(
            HttpResponse(
                status=429,
                body=b"{}",
                headers={"Retry-After": "1", "X-Repro-Served-From": "store"},
            )
        )
        assert b"HTTP/1.1 429 Too Many Requests\r\n" in wire
        assert b"Retry-After: 1\r\n" in wire
        assert b"X-Repro-Served-From: store\r\n" in wire

    def test_unknown_status_still_renders(self):
        wire = render_response(HttpResponse(status=418, body=b""))
        assert wire.startswith(b"HTTP/1.1 418 Unknown\r\n")

    def test_keep_alive_connection_header(self):
        wire = render_response(
            HttpResponse(status=200, body=b"{}"), close=False
        )
        assert b"Connection: keep-alive\r\n" in wire
        assert b"Connection: close" not in wire
