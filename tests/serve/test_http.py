"""The stdlib HTTP layer: request parsing, limits, response rendering."""

import asyncio

import pytest

from repro.serve.http import (
    MAX_HEADER_LINES,
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
    render_response,
)


def parse(raw: bytes) -> HttpRequest | None:
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(
            b"GET /v1/run/fig1?quick=true&seed=3 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Accept: application/json\r\n"
            b"\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/v1/run/fig1"
        assert request.query == {"quick": "true", "seed": "3"}
        assert request.headers["host"] == "localhost"
        assert request.headers["accept"] == "application/json"

    def test_percent_encoded_path_is_decoded(self):
        request = parse(b"GET /v1/run/fig%311 HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/run/fig11"

    def test_blank_query_values_kept(self):
        request = parse(b"GET /v1/run/fig1?quick HTTP/1.1\r\n\r\n")
        assert request.query == {"quick": ""}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_request_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET /v1/healthz HTTP/1.1\r\nHost: local")
        assert exc.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET /v1/healthz\r\n\r\n")
        assert exc.value.status == 400

    def test_non_http_version_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET /v1/healthz GOPHER/7\r\n\r\n")
        assert exc.value.status == 400

    def test_post_is_405(self):
        with pytest.raises(HttpError) as exc:
            parse(b"POST /v1/run/fig1 HTTP/1.1\r\n\r\n")
        assert exc.value.status == 405

    def test_header_without_colon_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\nnot-a-header\r\n\r\n")
        assert exc.value.status == 400

    def test_too_many_headers_is_400(self):
        headers = b"".join(
            b"X-H%d: v\r\n" % i for i in range(MAX_HEADER_LINES + 1)
        )
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert exc.value.status == 400

    def test_oversized_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n")
        assert exc.value.status == 400


class TestRenderResponse:
    def test_status_line_and_framing(self):
        wire = render_response(HttpResponse(status=200, body=b'{"ok": true}\n'))
        head, _, body = wire.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        assert lines[0] == b"HTTP/1.1 200 OK"
        assert b"Content-Type: application/json" in lines
        assert b"Content-Length: 13" in lines
        assert b"Connection: close" in lines
        assert body == b'{"ok": true}\n'

    def test_extra_headers_rendered(self):
        wire = render_response(
            HttpResponse(
                status=429,
                body=b"{}",
                headers={"Retry-After": "1", "X-Repro-Served-From": "store"},
            )
        )
        assert b"HTTP/1.1 429 Too Many Requests\r\n" in wire
        assert b"Retry-After: 1\r\n" in wire
        assert b"X-Repro-Served-From: store\r\n" in wire

    def test_unknown_status_still_renders(self):
        wire = render_response(HttpResponse(status=418, body=b""))
        assert wire.startswith(b"HTTP/1.1 418 Unknown\r\n")
