"""Keep-alive connections: reuse, pipelining, idle timeout, drain."""

import asyncio
import json

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.smoke import read_http_response


def make_app(**overrides):
    config = dict(jobs=0, max_inflight=16)
    config.update(overrides)
    return ServeApp(ServeConfig(**config))


def request_bytes(target, *, close=False, version="1.1", extra=()):
    lines = [f"GET {target} HTTP/{version}", "Host: t"]
    if close:
        lines.append("Connection: close")
    lines.extend(extra)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def serving(app):
    server = await app.start_server("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    return server, port


class TestKeepAlive:
    def test_many_requests_over_one_connection(self):
        async def go():
            app = make_app()
            server, port = await serving(app)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                for i in range(5):
                    writer.write(request_bytes("/v1/healthz"))
                    await writer.drain()
                    reply = await read_http_response(reader)
                    assert reply.status == 200
                    assert reply.headers["connection"] == "keep-alive"
                    assert json.loads(reply.body)["status"] == "ok"
                writer.close()
                await writer.wait_closed()
                assert app.stats.connections_opened == 1
                assert app.stats.keepalive_reuses == 4
                assert app.stats.requests == 5
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())

    def test_pipelined_requests_answered_in_order(self):
        async def go():
            app = make_app()
            server, port = await serving(app)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                # both requests on the wire before any response is read
                writer.write(
                    request_bytes("/v1/healthz") + request_bytes("/v1/stats")
                )
                await writer.drain()
                first = await read_http_response(reader)
                second = await read_http_response(reader)
                writer.close()
                await writer.wait_closed()
                assert first.status == second.status == 200
                assert "status" in json.loads(first.body)  # healthz
                assert "requests" in json.loads(second.body)  # stats
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())

    def test_connection_close_honored(self):
        async def go():
            app = make_app()
            server, port = await serving(app)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(request_bytes("/v1/healthz", close=True))
                await writer.drain()
                reply = await read_http_response(reader)
                assert reply.headers["connection"] == "close"
                assert await reader.read() == b""  # daemon closed
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())

    def test_http_10_defaults_to_close(self):
        async def go():
            app = make_app()
            server, port = await serving(app)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(request_bytes("/v1/healthz", version="1.0"))
                await writer.drain()
                reply = await read_http_response(reader)
                assert reply.headers["connection"] == "close"
                assert await reader.read() == b""
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())

    def test_max_requests_per_conn_closes_after_budget(self):
        async def go():
            app = make_app(max_requests_per_conn=2)
            server, port = await serving(app)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(request_bytes("/v1/healthz"))
                await writer.drain()
                first = await read_http_response(reader)
                assert first.headers["connection"] == "keep-alive"
                writer.write(request_bytes("/v1/healthz"))
                await writer.drain()
                second = await read_http_response(reader)
                # budget exhausted: the daemon says so and closes
                assert second.headers["connection"] == "close"
                assert await reader.read() == b""
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())

    def test_idle_connection_closed_after_idle_timeout(self):
        async def go():
            app = make_app(idle_timeout_s=0.05)
            server, port = await serving(app)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(request_bytes("/v1/healthz"))
                await writer.drain()
                reply = await read_http_response(reader)
                assert reply.headers["connection"] == "keep-alive"
                # now sit idle: the daemon closes silently (no 408 — the
                # connection already carried a complete exchange)
                raw = await asyncio.wait_for(reader.read(), timeout=5)
                assert raw == b""
                assert app.stats.timeouts == 0
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())

    def test_drain_closes_idle_keepalive_connection_immediately(self):
        async def go():
            app = make_app()  # default 30s idle timeout: drain must not wait it
            server, port = await serving(app)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(request_bytes("/v1/healthz"))
                await writer.drain()
                await read_http_response(reader)
                # parked idle between requests
                while not app._idle:
                    await asyncio.sleep(0)
                server.close()
                await asyncio.wait_for(app.drain(), timeout=5)
                raw = await asyncio.wait_for(reader.read(), timeout=5)
                assert raw == b""  # closed by drain, well before idle timeout
                assert app._connections == set()
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())

    def test_keepalive_run_responses_byte_identical(self):
        async def go():
            app = make_app()
            server, port = await serving(app)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                bodies = []
                tiers = []
                for _ in range(3):
                    writer.write(request_bytes("/v1/run/fig1?seed=0"))
                    await writer.drain()
                    reply = await read_http_response(reader)
                    assert reply.status == 200
                    bodies.append(reply.body)
                    tiers.append(reply.headers["x-repro-served-from"])
                writer.close()
                await writer.wait_closed()
                assert len(set(bodies)) == 1
                assert tiers[0] == "computed"
                assert tiers[1] == tiers[2] == "memory"
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(go())
