"""Unit tests for the explicitly adaptive executor."""

import itertools

import pytest

from repro.errors import SimulationError
from repro.algorithms.library import MM_INPLACE, MM_SCAN, STRASSEN
from repro.algorithms.spec import RegularSpec, ScanPlacement
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.adaptive import AdaptiveExecutor, run_adaptive
from repro.simulation.symbolic import SymbolicSimulator


class TestConstruction:
    def test_rejects_non_end_placement(self):
        with pytest.raises(SimulationError):
            AdaptiveExecutor(MM_SCAN.with_placement(ScanPlacement.FRONT), 16)

    def test_rejects_bad_divisor(self):
        with pytest.raises(SimulationError):
            AdaptiveExecutor(MM_SCAN, 16, completion_divisor=0)

    def test_rejects_bad_size(self):
        with pytest.raises(Exception):
            AdaptiveExecutor(MM_SCAN, 17)


class TestConservation:
    @pytest.mark.parametrize("spec", [MM_SCAN, MM_INPLACE, STRASSEN],
                             ids=lambda s: s.name)
    def test_completes_all_work(self, spec):
        n = spec.b**3
        rec = run_adaptive(spec, n, itertools.repeat(7))
        assert rec.completed
        assert rec.leaves_done == spec.leaves(n)
        assert rec.scan_accesses == spec.subtree_scan_total(n)

    def test_single_giant_box(self):
        rec = run_adaptive(MM_SCAN, 64, [10**9])
        assert rec.completed and rec.boxes_used == 1

    def test_exhaustion_reported(self):
        rec = run_adaptive(MM_SCAN, 64, [1, 1, 1])
        assert not rec.completed
        assert rec.leaves_done == 3

    def test_max_boxes(self):
        rec = run_adaptive(MM_SCAN, 64, itertools.repeat(1), max_boxes=4)
        assert rec.boxes_used == 4 and not rec.completed

    def test_feed_after_done_rejected(self):
        ex = AdaptiveExecutor(MM_SCAN, 16)
        ex.feed(16)
        assert ex.is_done
        with pytest.raises(SimulationError):
            ex.feed(1)

    def test_useless_boxes_make_no_progress(self):
        spec = RegularSpec(8, 4, 1.0, base_size=4)
        rec = run_adaptive(spec, 64, [2, 2, 2])
        assert rec.leaves_done == 0 and not rec.completed


class TestAdaptivity:
    def test_never_worse_than_oblivious_on_adversary(self):
        for k in (2, 3, 4):
            n = 4**k
            profile = worst_case_profile(8, 4, n)
            stream = itertools.chain(iter(profile), itertools.cycle(profile.boxes.tolist()))
            adaptive = run_adaptive(MM_SCAN, n, stream)
            oblivious = SymbolicSimulator(MM_SCAN, n).run(profile)
            assert adaptive.completed
            assert adaptive.adaptivity_ratio <= oblivious.adaptivity_ratio + 1e-9

    def test_flat_ratio_on_adversary(self):
        ratios = []
        for k in (2, 3, 4, 5):
            n = 4**k
            profile = worst_case_profile(8, 4, n)
            stream = itertools.chain(iter(profile), itertools.cycle(profile.boxes.tolist()))
            ratios.append(run_adaptive(MM_SCAN, n, stream).adaptivity_ratio)
        assert max(ratios) < 2.5
        assert ratios[-1] <= ratios[0] + 0.5  # no log growth

    def test_big_box_completes_pending_sibling_not_just_scan(self):
        # after the first child is done, a box of size n/b should complete
        # a whole pending sibling (cost n/b) rather than idle
        n = 64
        ex = AdaptiveExecutor(MM_SCAN, n)
        leaves = []
        ex.record_subtree = lambda size: leaves.append(size)  # type: ignore
        ex.feed(16)  # completes a whole size-16 child in one box
        assert leaves == [16]

    def test_completion_divisor_respected(self):
        n = 64
        ex = AdaptiveExecutor(MM_SCAN, n, completion_divisor=4)
        done = []
        ex.record_subtree = lambda size: done.append(size)  # type: ignore
        ex.feed(16)  # s_eff = 4: only size-4 subtrees completable
        assert done and max(done) <= 4
