"""Unit tests for the simulator bench suite (repro.simulation.bench)."""

import json

from repro.cli import main
from repro.simulation.bench import (
    SIM_BENCH_SCHEMA_VERSION,
    SIM_BENCHMARK_NAME,
    run_sim_bench,
)


class TestRunSimBench:
    def test_quick_payload_shape_and_identity(self):
        payload = run_sim_bench(quick=True, seed=0)
        assert payload["bench_schema_version"] == SIM_BENCH_SCHEMA_VERSION
        assert payload["benchmark"] == SIM_BENCHMARK_NAME
        assert payload["quick"] is True
        names = [w["name"] for w in payload["workloads"]]
        assert names == [
            "adversarial-worst-case",
            "adversarial-recursive",
            "randomized-placement",
            "mc-iid-uniform",
        ]
        # the speedup is only evidence because the results are identical
        assert payload["bit_identical"] is True
        for workload in payload["workloads"]:
            assert workload["bit_identical"] is True
            assert workload["scalar_wall_time_s"] > 0
            assert workload["chunked_wall_time_s"] > 0
        # top-level speedup = the weakest workload, not the flattering one
        per_workload = [w["speedup"] for w in payload["workloads"]]
        assert payload["speedup"] == min(per_workload)

    def test_payload_is_json_serializable_and_tagged(self):
        payload = run_sim_bench(quick=True, seed=3)
        text = json.dumps(payload)
        assert "environment" in payload and "git_revision" in payload
        assert json.loads(text)["seed"] == 3


class TestCliSuite:
    def test_bench_suite_sim_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sim.json"
        code = main(["bench", "--suite", "sim", "-o", str(out)])
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["benchmark"] == SIM_BENCHMARK_NAME
        assert "sim bench:" in capsys.readouterr().out

    def test_bench_suite_sim_history_appends(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sim.json"
        assert main(["bench", "--suite", "sim", "-o", str(out), "--history"]) == 0
        assert main(["bench", "--suite", "sim", "-o", str(out), "--history"]) == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["benchmark"] == SIM_BENCHMARK_NAME
        assert len(doc["records"]) == 2
        captured = capsys.readouterr().out
        assert "sim-scalar-vs-chunked" in captured
        assert "regression check" in captured

    def test_bench_suite_sim_rejects_ids(self, tmp_path, capsys):
        code = main(
            ["bench", "--suite", "sim", "fig1", "-o", str(tmp_path / "b.json")]
        )
        assert code == 2
