"""Differential tests: the chunked fast path vs the scalar simulator.

The fast path's contract (repro.simulation.fastpath) is *bit-identity*:
for every eligible workload it must produce exactly the RunRecord the
scalar per-box loop produces — same boxes_used, same leaves/scans, same
float potential, same counters.  These tests sweep specs x models x
completion divisors x box sources and assert record equality, then pin
the selection rules (when the fast path engages, when it falls back,
when forcing it raises).
"""

import numpy as np
import pytest

from repro.algorithms.randomized import random_slot_placement
from repro.algorithms.spec import RegularSpec
from repro.errors import SimulationError
from repro.profiles import BoxRuns, worst_case_profile
from repro.profiles.distributions import UniformPowers, UniformRange
from repro.runtime import instrumentation
from repro.simulation.fastpath import is_chunkable, run_chunked, run_sampled
from repro.simulation.montecarlo import (
    estimate_expected_cost,
    sample_boxes_to_complete,
)
from repro.simulation.runner import run_repeated
from repro.simulation.symbolic import SymbolicSimulator

SPECS = [
    RegularSpec(8, 4, 1.0),
    RegularSpec(8, 4, 0.0),
    RegularSpec(4, 4, 1.0),
    RegularSpec(2, 4, 1.0),
]


def both_records(spec, n, source, model="simplified", kappa=1, max_boxes=None):
    """(scalar record, fast record) for one workload."""
    kwargs = {"completion_divisor": kappa} if model == "simplified" else {}
    scalar = SymbolicSimulator(spec, n, model=model, **kwargs).run(
        source, max_boxes=max_boxes, fastpath=False
    )
    fast = SymbolicSimulator(spec, n, model=model, **kwargs).run(
        source, max_boxes=max_boxes
    )
    return scalar, fast


def sources_for(spec, n, rng):
    profile = worst_case_profile(spec.a, spec.b, n)
    arr = profile.boxes
    shuffled = arr.copy()
    rng.shuffle(shuffled)
    iid = rng.integers(1, 4 * n, size=500).astype(np.int64)
    return {
        "profile": profile,
        "runs": profile.runs(),
        "array": arr,
        "shuffled": shuffled,
        "iid": iid,
        "iid_runs": BoxRuns.from_boxes(iid),
        "tiny": np.ones(40, dtype=np.int64),
        "empty": np.empty(0, dtype=np.int64),
    }


class TestEquivalenceSweep:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("model", ["simplified", "greedy"])
    def test_identical_records_across_sources(self, spec, model):
        rng = np.random.default_rng(0)
        for n in (64, 256):
            for name, source in sources_for(spec, n, rng).items():
                scalar, fast = both_records(spec, n, source, model=model)
                assert scalar == fast, f"{name} n={n}"

    @pytest.mark.parametrize("kappa", [1, 2, 4])  # 4 = b for these specs
    def test_identical_records_across_completion_divisors(self, kappa):
        spec = SPECS[0]
        rng = np.random.default_rng(1)
        for name, source in sources_for(spec, 256, rng).items():
            scalar, fast = both_records(spec, 256, source, kappa=kappa)
            assert scalar == fast, name

    def test_identical_records_under_max_boxes(self):
        spec = SPECS[0]
        n = 256
        profile = worst_case_profile(spec.a, spec.b, n)
        for mb in (0, 1, 7, 100, len(profile) // 3, len(profile) + 10):
            scalar, fast = both_records(spec, n, profile, max_boxes=mb)
            assert scalar == fast, f"max_boxes={mb}"
            assert fast.boxes_used <= mb

    def test_seeded_property_sweep(self):
        # randomized workloads: i.i.d. sizes, random lengths, both models
        rng = np.random.default_rng(1234)
        for trial in range(20):
            spec = SPECS[trial % len(SPECS)]
            n = int(4 ** rng.integers(2, 5))
            length = int(rng.integers(0, 300))
            boxes = rng.integers(1, 2 * n, size=length).astype(np.int64)
            model = "simplified" if trial % 2 == 0 else "greedy"
            kappa = int(rng.integers(1, 5)) if model == "simplified" else 1
            scalar, fast = both_records(
                spec, n, boxes, model=model, kappa=kappa
            )
            assert scalar == fast, f"trial {trial}"

    def test_logical_box_counters_preserved(self):
        spec = SPECS[0]
        profile = worst_case_profile(spec.a, spec.b, 256)
        with instrumentation.collect() as scalar_counters:
            SymbolicSimulator(spec, 256).run(profile, fastpath=False)
        with instrumentation.collect() as fast_counters:
            SymbolicSimulator(spec, 256).run(profile.runs())
        assert scalar_counters.as_dict() == fast_counters.as_dict()
        assert fast_counters.as_dict()["sim.boxes"] == len(profile)


class TestRepeatedAndSampled:
    def test_run_repeated_equivalent(self):
        spec = SPECS[0]
        n = 256
        profile = worst_case_profile(spec.a, spec.b, n)
        for source in (profile, profile.runs(), profile.boxes):
            for mc in (None, 1, 3):
                scalar = run_repeated(
                    spec, n, source, max_completions=mc, fastpath=False
                )
                fast = run_repeated(spec, n, source, max_completions=mc)
                assert scalar == fast

    @pytest.mark.parametrize("dist", [UniformPowers(4, 0, 4), UniformRange(1, 64)])
    def test_run_sampled_bitwise_equal(self, dist):
        spec = SPECS[0]
        for seed in (0, 1, 2):
            scalar = sample_boxes_to_complete(
                spec, 256, dist, np.random.default_rng(seed), fastpath=False
            )
            fast = sample_boxes_to_complete(
                spec, 256, dist, np.random.default_rng(seed), fastpath=True
            )
            assert scalar == fast

    def test_estimate_expected_cost_identical(self):
        spec = SPECS[0]
        scalar = estimate_expected_cost(
            spec, 256, UniformPowers(4, 0, 4), trials=10, rng=7, fastpath=False
        )
        fast = estimate_expected_cost(
            spec, 256, UniformPowers(4, 0, 4), trials=10, rng=7, fastpath=True
        )
        assert scalar == fast


class TestSelection:
    def test_eligible_simulator_is_chunkable(self):
        assert is_chunkable(SymbolicSimulator(SPECS[0], 64))
        assert is_chunkable(SymbolicSimulator(SPECS[0], 64, model="greedy"))

    def test_recursive_model_is_chunkable(self):
        # chunkable since the replayable-RNG refactor (feed_recursive_run)
        sim = SymbolicSimulator(SPECS[0], 64, model="recursive")
        assert is_chunkable(sim)
        record = sim.run(worst_case_profile(8, 4, 64))  # auto-select: fast
        assert record.completed
        scalar = SymbolicSimulator(SPECS[0], 64, model="recursive").run(
            worst_case_profile(8, 4, 64), fastpath=False
        )
        assert record == scalar

    def test_addressable_placement_is_chunkable(self):
        # seed-built placements draw by node index: chunkable
        sim = SymbolicSimulator(
            SPECS[0], 64, scan_randomizer=random_slot_placement(SPECS[0], 0)
        )
        assert is_chunkable(sim)
        record = sim.run(worst_case_profile(8, 4, 64))
        assert record.completed

    def test_positional_placement_falls_back_to_scalar(self):
        # a live Generator keeps the legacy positional draws: scalar only
        legacy = random_slot_placement(SPECS[0], np.random.default_rng(0))
        sim = SymbolicSimulator(SPECS[0], 64, scan_randomizer=legacy)
        assert not is_chunkable(sim)
        record = sim.run(worst_case_profile(8, 4, 64))
        assert record.completed

    def test_forcing_fastpath_on_ineligible_raises(self):
        legacy = random_slot_placement(SPECS[0], np.random.default_rng(0))
        sim = SymbolicSimulator(SPECS[0], 64, scan_randomizer=legacy)
        with pytest.raises(SimulationError):
            sim.run(worst_case_profile(8, 4, 64), fastpath=True)

    def test_run_chunked_rejects_ineligible_simulator(self):
        legacy = random_slot_placement(SPECS[0], np.random.default_rng(0))
        sim = SymbolicSimulator(SPECS[0], 64, scan_randomizer=legacy)
        with pytest.raises(SimulationError):
            run_chunked(sim, worst_case_profile(8, 4, 64))

    def test_record_boxes_is_scalar_only(self):
        sim = SymbolicSimulator(SPECS[0], 64)
        profile = worst_case_profile(8, 4, 64)
        record = sim.run(profile, record_boxes=True)  # auto: falls back
        assert record.completed and record.box_sizes is not None
        with pytest.raises(SimulationError):
            SymbolicSimulator(SPECS[0], 64).run(
                profile, record_boxes=True, fastpath=True
            )

    def test_run_sampled_requires_chunkable(self):
        legacy = random_slot_placement(SPECS[0], np.random.default_rng(0))
        sim = SymbolicSimulator(SPECS[0], 64, scan_randomizer=legacy)
        with pytest.raises(SimulationError):
            run_sampled(sim, UniformPowers(4, 0, 4), np.random.default_rng(0))
