"""Unit tests for Monte-Carlo estimation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.algorithms.library import MM_SCAN
from repro.profiles.distributions import PointMass, UniformPowers
from repro.simulation.montecarlo import (
    MCEstimate,
    estimate,
    estimate_expected_cost,
    sample_boxes_to_complete,
)


class TestMCEstimate:
    def test_ci_contains_mean(self):
        est = MCEstimate(mean=5.0, std=1.0, trials=100, confidence=0.95)
        lo, hi = est.ci
        assert lo < 5.0 < hi

    def test_ci_width_shrinks_with_trials(self):
        narrow = MCEstimate(5.0, 1.0, 400, 0.95)
        wide = MCEstimate(5.0, 1.0, 16, 0.95)
        assert narrow.ci_halfwidth < wide.ci_halfwidth

    def test_single_trial_infinite_ci(self):
        assert MCEstimate(5.0, 0.0, 1, 0.95).ci_halfwidth == float("inf")

    def test_str(self):
        assert "trials" in str(MCEstimate(1.0, 0.1, 10, 0.95))


class TestEstimate:
    def test_deterministic_fn(self):
        est = estimate(lambda g: 3.0, trials=10, rng=0)
        assert est.mean == 3.0 and est.std == 0.0

    def test_reproducible_by_seed(self):
        fn = lambda g: g.random()
        a = estimate(fn, trials=20, rng=42)
        b = estimate(fn, trials=20, rng=42)
        assert a.mean == b.mean

    def test_converges_to_truth(self):
        est = estimate(lambda g: g.uniform(0, 2), trials=4000, rng=0)
        assert est.mean == pytest.approx(1.0, abs=0.05)
        lo, hi = est.ci
        assert lo <= 1.0 <= hi

    def test_invalid_args(self):
        with pytest.raises(SimulationError):
            estimate(lambda g: 1.0, trials=0)
        with pytest.raises(SimulationError):
            estimate(lambda g: 1.0, trials=10, confidence=1.5)


class TestSampling:
    def test_point_mass_deterministic_count(self, rng):
        # boxes of exactly n complete the problem in one box
        count = sample_boxes_to_complete(MM_SCAN, 64, PointMass(64), rng)
        assert count == 1

    def test_small_point_mass_known_count(self, rng):
        # PointMass(1) on MM-SCAN n=4: 8 leaf boxes + 4 scan boxes
        count = sample_boxes_to_complete(MM_SCAN, 4, PointMass(1), rng)
        assert count == 12

    def test_expected_cost_matches_exact(self):
        from repro.analysis.recurrence import solve_recurrence

        dist = UniformPowers(4, 1, 4)
        boxes, ratio = estimate_expected_cost(
            MM_SCAN, 64, dist, trials=600, rng=1
        )
        sol = solve_recurrence(MM_SCAN, 64, dist)
        assert abs(boxes.mean - sol.f) < 4 * boxes.ci_halfwidth + 1e-9
        assert abs(ratio.mean - sol.cost_ratio) < 4 * ratio.ci_halfwidth + 1e-9

    def test_invalid_trials(self):
        with pytest.raises(SimulationError):
            estimate_expected_cost(MM_SCAN, 16, PointMass(4), trials=0)


class TestInstrumentationConvention:
    def test_one_estimates_tick_per_call(self):
        # pinned convention: estimate() and estimate_expected_cost()
        # each record mc.estimates exactly once per call — the latter's
        # two returned MCEstimates come from one estimation over one
        # trial set, not two
        from repro.runtime import instrumentation

        with instrumentation.collect() as counters:
            estimate(lambda g: 1.0, trials=3, rng=0)
        assert counters.as_dict()["mc.estimates"] == 1
        assert counters.as_dict()["mc.trials"] == 3
        with instrumentation.collect() as counters:
            estimate_expected_cost(MM_SCAN, 16, PointMass(4), trials=3, rng=0)
        assert counters.as_dict()["mc.estimates"] == 1
        assert counters.as_dict()["mc.trials"] == 3
        with instrumentation.collect() as counters:
            estimate_expected_cost(MM_SCAN, 16, PointMass(4), trials=2, rng=0)
            estimate_expected_cost(MM_SCAN, 16, PointMass(4), trials=2, rng=1)
        assert counters.as_dict()["mc.estimates"] == 2


class TestParallelEstimation:
    def test_parallel_matches_statistics(self):
        # parallel and serial use different seed derivations, so compare
        # statistically (same distribution), plus determinism per seed
        dist = UniformPowers(4, 1, 4)
        b_par1, _ = estimate_expected_cost(
            MM_SCAN, 64, dist, trials=64, rng=5, n_jobs=2
        )
        b_par2, _ = estimate_expected_cost(
            MM_SCAN, 64, dist, trials=64, rng=5, n_jobs=3
        )
        # bit-identical regardless of worker count (seeds per trial)
        assert b_par1.mean == b_par2.mean
        b_ser, _ = estimate_expected_cost(MM_SCAN, 64, dist, trials=200, rng=5)
        assert abs(b_par1.mean - b_ser.mean) < 4 * (
            b_par1.ci_halfwidth + b_ser.ci_halfwidth
        )

    def test_parallel_rejects_generator_rng(self):
        import numpy as np

        with pytest.raises(SimulationError):
            estimate_expected_cost(
                MM_SCAN, 16, PointMass(4), trials=4,
                rng=np.random.default_rng(0), n_jobs=2,
            )

    def test_rejects_bad_n_jobs(self):
        with pytest.raises(SimulationError):
            estimate_expected_cost(MM_SCAN, 16, PointMass(4), trials=4, n_jobs=0)
