"""Replayable-RNG differential pins: the tentpole acceptance tests.

Counter-addressed randomness makes three equalities hold *by
construction*; these tests pin each one bitwise:

* chunked vs scalar — the fast path and the per-box loop produce the
  same :class:`~repro.simulation.symbolic.RunRecord` on every model
  (``simplified``/``recursive``/``greedy``) under every addressable
  placement (none/slot/split/coin) and completion divisor;
* ``n_jobs=4`` vs ``n_jobs=1`` —
  :func:`~repro.simulation.montecarlo.estimate_expected_cost` returns
  identical estimates at any worker count, because trial ``t`` draws
  from the addressed plane ``(root_seed, "mc", t)`` wherever it runs;
* reset replay — a reset simulator under an addressable placement
  replays the *same* randomized execution, scalar and fast path alike.
"""

import itertools

import numpy as np
import pytest

from repro.algorithms.randomized import (
    coin_flip_placement,
    random_slot_placement,
    random_split_placement,
)
from repro.algorithms.spec import RegularSpec
from repro.profiles import worst_case_profile
from repro.profiles.distributions import UniformPowers, UniformRange
from repro.simulation.montecarlo import estimate_expected_cost
from repro.simulation.symbolic import SymbolicSimulator
from repro.util.rng import ReplayableStream

SPEC = RegularSpec(8, 4, 1.0)
SCANLESS = RegularSpec(8, 4, 0.0)
N = 256

PLACEMENTS = {
    "none": lambda spec: None,
    "slot": lambda spec: random_slot_placement(spec, 0),
    "split": lambda spec: random_split_placement(spec, ReplayableStream(1)),
    "coin": lambda spec: coin_flip_placement(spec, 2),
}


def records(spec, n, source, model, placement, kappa=1, fastpath=None):
    kwargs = {"completion_divisor": kappa} if model != "greedy" else {}
    sim = SymbolicSimulator(
        spec, n, model=model, scan_randomizer=placement, **kwargs
    )
    return sim.run(source, fastpath=fastpath)


class TestChunkedVsScalar:
    @pytest.mark.parametrize("model", ["simplified", "recursive", "greedy"])
    @pytest.mark.parametrize("placement", sorted(PLACEMENTS))
    def test_worst_case_profile_bit_identical(self, model, placement):
        profile = worst_case_profile(SPEC.a, SPEC.b, N)
        scan_randomizer = PLACEMENTS[placement](SPEC)
        scalar = records(
            SPEC, N, profile, model, scan_randomizer, fastpath=False
        )
        fast = records(
            SPEC, N, profile.runs(), model, PLACEMENTS[placement](SPEC)
        )
        assert scalar == fast

    @pytest.mark.parametrize("kappa", [1, 2, 4])
    @pytest.mark.parametrize("model", ["simplified", "recursive"])
    def test_completion_divisors_bit_identical(self, kappa, model):
        profile = worst_case_profile(SPEC.a, SPEC.b, N)
        scalar = records(
            SPEC,
            N,
            profile,
            model,
            random_slot_placement(SPEC, 3),
            kappa=kappa,
            fastpath=False,
        )
        fast = records(
            SPEC,
            N,
            profile.boxes,
            model,
            random_slot_placement(SPEC, 3),
            kappa=kappa,
        )
        assert scalar == fast

    @pytest.mark.parametrize("model", ["simplified", "recursive", "greedy"])
    def test_sampled_iid_bit_identical(self, model):
        # the same addressed draws feed a scalar per-box sampler and the
        # batched fast path; the records must match on both spec shapes
        for spec in (SPEC, SCANLESS):
            stream = ReplayableStream(5, "boxes")
            dist = UniformPowers(4, 0, 4)
            boxes = dist.sample_at(0, 4000, stream)
            scalar = records(spec, N, boxes, model, None, fastpath=False)
            fast = records(spec, N, boxes, model, None)
            assert scalar == fast, spec.name


class TestJobsInvariance:
    def test_parallel_estimates_bit_identical_to_serial(self):
        dist = UniformRange(1, 64)
        serial = estimate_expected_cost(
            SPEC, 64, dist, trials=12, rng=0, n_jobs=1
        )
        parallel = estimate_expected_cost(
            SPEC, 64, dist, trials=12, rng=0, n_jobs=4
        )
        assert serial == parallel

    def test_stream_rng_equivalent_to_int_seed(self):
        dist = UniformPowers(4, 0, 3)
        by_int = estimate_expected_cost(SPEC, 64, dist, trials=6, rng=9)
        by_stream = estimate_expected_cost(
            SPEC, 64, dist, trials=6, rng=ReplayableStream(9, "mc")
        )
        assert by_int == by_stream

    def test_fastpath_toggle_keeps_estimates(self):
        dist = UniformRange(1, 64)
        fast = estimate_expected_cost(
            SPEC, 64, dist, trials=8, rng=4, fastpath=True
        )
        scalar = estimate_expected_cost(
            SPEC, 64, dist, trials=8, rng=4, fastpath=False
        )
        assert fast == scalar

    def test_legacy_generator_refuses_parallel(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            estimate_expected_cost(
                SPEC,
                64,
                UniformRange(1, 64),
                trials=4,
                rng=np.random.default_rng(0),
                n_jobs=2,
            )


class TestResetReplay:
    @pytest.mark.parametrize("fastpath", [False, None])
    def test_reset_replays_randomized_execution(self, fastpath):
        profile = worst_case_profile(SPEC.a, SPEC.b, N)
        source = profile if fastpath is False else profile.runs()
        sim = SymbolicSimulator(
            SPEC, N, scan_randomizer=random_slot_placement(SPEC, 6)
        )
        first = sim.run(source, fastpath=fastpath)
        sim.reset()
        second = sim.run(source, fastpath=fastpath)
        assert first == second

    def test_two_simulators_same_seed_agree(self):
        # placements are a pure function of (seed, node index): two
        # fresh simulators replay the same randomized execution
        profile = worst_case_profile(SPEC.a, SPEC.b, N)
        runs = [
            SymbolicSimulator(
                SPEC, N, scan_randomizer=coin_flip_placement(SPEC, 8)
            ).run(profile, fastpath=False)
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_legacy_positional_reset_keeps_consuming(self):
        # the legacy Generator-based randomizer is positional: resetting
        # does not rewind its stream, so this pin documents that the old
        # behaviour (fresh placements per run) still exists when asked for
        sim = SymbolicSimulator(
            SPEC,
            64,
            scan_randomizer=random_slot_placement(
                SPEC, np.random.default_rng(0)
            ),
        )
        first = sim.run(itertools.repeat(16), max_boxes=10**6)
        sim.reset()
        assert not sim.is_done
        second = sim.run(itertools.repeat(16), max_boxes=10**6)
        assert first.completed and second.completed
