"""Unit tests for run modes (single and repeated)."""

import itertools

import pytest

from repro.algorithms.library import MM_INPLACE, MM_SCAN
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.runner import run_boxes, run_repeated


class TestRunBoxes:
    def test_wraps_simulator(self):
        rec = run_boxes(MM_SCAN, 16, [10**6])
        assert rec.completed and rec.boxes_used == 1

    def test_model_passthrough(self):
        rec = run_boxes(MM_SCAN, 16, [10**6], model="recursive")
        assert rec.model == "recursive"


class TestRunRepeated:
    def test_mm_scan_exactly_one_on_worst_case(self):
        for k in (2, 3, 4):
            profile = worst_case_profile(8, 4, 4**k)
            rec = run_repeated(MM_SCAN, 4**k, profile)
            assert rec.completions == 1
            assert rec.partial_leaves == 0
            assert rec.boxes_used == len(profile)

    def test_mm_inplace_log_completions(self):
        counts = []
        for k in (2, 3, 4):
            profile = worst_case_profile(8, 4, 4**k)
            rec = run_repeated(MM_INPLACE, 4**k, profile)
            counts.append(rec.completions)
        # exactly log_4(n) + 1 on this profile
        assert counts == [3, 4, 5]

    def test_total_leaves_accounting(self):
        profile = worst_case_profile(8, 4, 16)
        rec = run_repeated(MM_INPLACE, 16, profile)
        assert rec.total_leaves == rec.completions * MM_INPLACE.leaves(16)

    def test_max_completions_stops_early(self):
        rec = run_repeated(MM_SCAN, 16, itertools.repeat(16), max_completions=3)
        assert rec.completions == 3
        assert rec.boxes_used == 3

    def test_partial_leaves_of_unfinished_run(self):
        # 1 box of 16 completes one run; 1 box of 4 starts the next
        rec = run_repeated(MM_SCAN, 16, [16, 4])
        assert rec.completions == 1
        assert rec.partial_leaves == 8

    def test_time_used(self):
        rec = run_repeated(MM_SCAN, 16, [16, 4])
        assert rec.time_used == 20
