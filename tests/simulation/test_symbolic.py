"""Unit tests for the symbolic simulator and its run records."""

import itertools

import pytest

from repro.errors import SimulationError
from repro.algorithms.library import MM_INPLACE, MM_SCAN
from repro.profiles.square import SquareProfile
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.symbolic import SymbolicSimulator


class TestConstruction:
    def test_valid_models(self):
        for model in ("simplified", "recursive", "greedy"):
            SymbolicSimulator(MM_SCAN, 16, model=model)

    def test_rejects_bad_model(self):
        with pytest.raises(SimulationError):
            SymbolicSimulator(MM_SCAN, 16, model="quantum")

    def test_rejects_bad_divisor(self):
        with pytest.raises(SimulationError):
            SymbolicSimulator(MM_SCAN, 16, completion_divisor=0)

    def test_rejects_bad_size(self):
        with pytest.raises(Exception):
            SymbolicSimulator(MM_SCAN, 17)


class TestRun:
    def test_worst_case_exact_completion(self):
        profile = worst_case_profile(8, 4, 64)
        sim = SymbolicSimulator(MM_SCAN, 64)
        rec = sim.run(profile)
        assert rec.completed
        assert rec.boxes_used == len(profile)
        assert rec.leaves_done == MM_SCAN.leaves(64)
        assert rec.scan_accesses == MM_SCAN.subtree_scan_total(64)
        assert rec.time_used == profile.total_time

    def test_worst_case_ratio_formula(self):
        profile = worst_case_profile(8, 4, 256)
        rec = SymbolicSimulator(MM_SCAN, 256).run(profile)
        assert rec.adaptivity_ratio == pytest.approx(5.0)  # log_4 n + 1

    def test_single_huge_box(self):
        rec = SymbolicSimulator(MM_SCAN, 64).run([10**9])
        assert rec.completed and rec.boxes_used == 1
        # bounded potential clips at n
        assert rec.adaptivity_ratio == pytest.approx(1.0)

    def test_run_exhaustion(self):
        rec = SymbolicSimulator(MM_SCAN, 64).run([1, 1])
        assert not rec.completed
        assert rec.leaves_done == 2

    def test_run_to_completion_raises(self):
        with pytest.raises(SimulationError):
            SymbolicSimulator(MM_SCAN, 64).run_to_completion([1, 1])

    def test_max_boxes(self):
        rec = SymbolicSimulator(MM_SCAN, 64).run(itertools.repeat(1), max_boxes=5)
        assert rec.boxes_used == 5 and not rec.completed

    def test_record_boxes(self):
        profile = worst_case_profile(8, 4, 16)
        rec = SymbolicSimulator(MM_SCAN, 16).run(profile, record_boxes=True)
        assert rec.box_sizes.tolist() == list(profile)
        assert rec.progress_per_box.sum() == MM_SCAN.leaves(16)

    def test_reset(self):
        sim = SymbolicSimulator(MM_SCAN, 16)
        sim.run([10**6])
        assert sim.is_done
        sim.reset()
        assert not sim.is_done

    def test_normalized_progress(self):
        sim = SymbolicSimulator(MM_SCAN, 16)
        rec = sim.run([4])
        assert rec.normalized_progress == pytest.approx(8 / 64)

    def test_summary_keys(self):
        rec = SymbolicSimulator(MM_SCAN, 16).run([16])
        s = rec.summary()
        assert s["completed"] and s["spec"] == "MM-SCAN"


class TestModels:
    def test_models_agree_on_worst_case(self):
        profile = worst_case_profile(8, 4, 64)
        recs = {
            model: SymbolicSimulator(MM_SCAN, 64, model=model).run(profile)
            for model in ("simplified", "recursive")
        }
        assert recs["simplified"].boxes_used == recs["recursive"].boxes_used

    def test_recursive_outruns_simplified_on_uniform_boxes(self):
        # constant boxes of size 16 on MM-INPLACE: the recursive model
        # chains subproblems within a box, the simplified one stops at the
        # first ancestor
        sizes = itertools.repeat(16)
        simp = SymbolicSimulator(MM_INPLACE, 64, model="simplified").run(
            itertools.islice(sizes, 10_000)
        )
        rec = SymbolicSimulator(MM_INPLACE, 64, model="recursive").run(
            itertools.repeat(16)
        )
        assert rec.completed
        assert rec.boxes_used <= simp.boxes_used

    def test_completion_divisor_slows_completion(self):
        base = SymbolicSimulator(MM_SCAN, 64).run(itertools.repeat(64))
        strict = SymbolicSimulator(
            MM_SCAN, 64, completion_divisor=4
        ).run(itertools.repeat(64))
        assert base.completed and strict.completed
        assert strict.boxes_used > base.boxes_used


class TestAccessProgress:
    def test_footnote4_accounting(self):
        from repro.algorithms.library import MM_SCAN
        from repro.profiles.worst_case import worst_case_profile

        n = 64
        rec = SymbolicSimulator(MM_SCAN, n).run(worst_case_profile(8, 4, n))
        assert rec.access_progress == MM_SCAN.subtree_accesses(n)

    def test_partial_run(self):
        from repro.algorithms.library import MM_SCAN

        rec = SymbolicSimulator(MM_SCAN, 64).run([4])
        # one child of size 4 = 8 leaves + scan of 4
        assert rec.access_progress == 12
