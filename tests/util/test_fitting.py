"""Unit tests for growth-law fitting and the adaptivity verdict."""

import math

import numpy as np
import pytest

from repro.util.fitting import fit_log_law, fit_power_law, growth_verdict


class TestFitPowerLaw:
    def test_recovers_exponent(self):
        xs = [2.0**k for k in range(1, 10)]
        ys = [3.0 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.coeff == pytest.approx(3.0, rel=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4, 8], [2, 4, 8, 16])
        assert fit.predict(16) == pytest.approx(32, rel=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])


class TestFitLogLaw:
    def test_recovers_slope(self):
        xs = [4.0**k for k in range(1, 8)]
        ys = [2.0 * math.log(x, 4) + 5 for x in xs]
        fit = fit_log_law(xs, ys, base=4.0)
        assert fit.slope == pytest.approx(2.0, abs=1e-9)
        assert fit.intercept == pytest.approx(5.0, abs=1e-9)

    def test_predict(self):
        fit = fit_log_law([2, 4, 8], [1, 2, 3], base=2.0)
        assert fit.predict(16) == pytest.approx(4.0, abs=1e-9)

    def test_bad_base(self):
        with pytest.raises(ValueError):
            fit_log_law([1, 2], [1, 2], base=1.0)


class TestGrowthVerdict:
    def test_perfect_log_series(self):
        ns = [4**k for k in range(2, 8)]
        ratios = [k + 1 for k in range(2, 8)]
        assert growth_verdict(ns, ratios, base=4.0) == "logarithmic"

    def test_flat_series(self):
        ns = [4**k for k in range(2, 8)]
        assert growth_verdict(ns, [2.0] * len(ns), base=4.0) == "constant"

    def test_noisy_flat_series(self):
        rng = np.random.default_rng(0)
        ns = [4**k for k in range(2, 9)]
        ratios = 2.0 + rng.normal(0, 0.05, len(ns))
        assert growth_verdict(ns, ratios.tolist(), base=4.0) == "constant"

    def test_converging_series_is_constant(self):
        # geometric convergence to 2 (the point-mass transient shape)
        ns = [4**k for k in range(2, 10)]
        ratios = [2.0 - 2.0 ** (1 - k) for k in range(2, 10)]
        assert growth_verdict(ns, ratios, base=4.0) == "constant"

    def test_sublinear_but_sustained_growth(self):
        ns = [4**k for k in range(2, 9)]
        ratios = [0.5 * (k + 1) for k in range(2, 9)]
        assert growth_verdict(ns, ratios, base=4.0) == "logarithmic"

    def test_rejects_nonpositive_ratio_mean(self):
        with pytest.raises(ValueError):
            growth_verdict([1, 2], [-1.0, -2.0])

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            growth_verdict([1, 2, 3], [1.0, 2.0])
