"""Unit tests for exact integer math helpers."""

from fractions import Fraction

import math
import pytest

from repro.util.intmath import (
    ceil_power,
    critical_exponent,
    critical_exponent_fraction,
    floor_power,
    ilog,
    ilog_floor,
    iroot,
    is_power_of,
    powers_between,
)


class TestIsPowerOf:
    def test_powers_of_two(self):
        for k in range(0, 40):
            assert is_power_of(2**k, 2)

    def test_powers_of_four(self):
        assert is_power_of(1, 4)
        assert is_power_of(4, 4)
        assert is_power_of(4**10, 4)

    def test_non_powers(self):
        assert not is_power_of(3, 2)
        assert not is_power_of(12, 4)
        assert not is_power_of(0, 2)
        assert not is_power_of(-4, 2)

    def test_two_is_not_power_of_four(self):
        assert not is_power_of(2, 4)

    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            is_power_of(8, 1)
        with pytest.raises(ValueError):
            is_power_of(8, 0)


class TestIlog:
    def test_exact(self):
        assert ilog(1, 4) == 0
        assert ilog(4, 4) == 1
        assert ilog(4**7, 4) == 7

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            ilog(10, 4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ilog(0, 2)

    def test_big_values(self):
        assert ilog(3**50, 3) == 50


class TestIlogFloor:
    def test_values(self):
        assert ilog_floor(1, 2) == 0
        assert ilog_floor(2, 2) == 1
        assert ilog_floor(3, 2) == 1
        assert ilog_floor(4, 2) == 2
        assert ilog_floor(4**5 + 1, 4) == 5

    def test_matches_float_log(self):
        for n in range(1, 2000):
            assert ilog_floor(n, 3) == int(math.floor(math.log(n, 3) + 1e-12))


class TestFloorCeilPower:
    def test_floor(self):
        assert floor_power(1, 4) == 1
        assert floor_power(17, 4) == 16
        assert floor_power(16, 4) == 16

    def test_ceil(self):
        assert ceil_power(1, 4) == 1
        assert ceil_power(17, 4) == 64
        assert ceil_power(16, 4) == 16

    def test_floor_le_ceil(self):
        for n in range(1, 500):
            assert floor_power(n, 2) <= n <= ceil_power(n, 2)


class TestPowersBetween:
    def test_range(self):
        assert list(powers_between(1, 64, 4)) == [1, 4, 16, 64]

    def test_open_interval(self):
        assert list(powers_between(5, 63, 4)) == [16]

    def test_empty(self):
        assert list(powers_between(5, 15, 4)) == [16][:0] or list(
            powers_between(5, 15, 4)
        ) == []

    def test_lo_clamped(self):
        assert list(powers_between(-10, 4, 2)) == [1, 2, 4]


class TestIroot:
    def test_exact_roots(self):
        assert iroot(27, 3) == 3
        assert iroot(16, 4) == 2
        assert iroot(1, 5) == 1

    def test_floor_behaviour(self):
        assert iroot(26, 3) == 2
        assert iroot(28, 3) == 3

    def test_large(self):
        assert iroot(10**30, 3) == 10**10

    def test_invalid(self):
        with pytest.raises(ValueError):
            iroot(-1, 2)
        with pytest.raises(ValueError):
            iroot(4, 0)


class TestCriticalExponent:
    def test_mm_scan(self):
        assert critical_exponent(8, 4) == pytest.approx(1.5)
        assert critical_exponent_fraction(8, 4) == Fraction(3, 2)

    def test_strassen_irrational(self):
        assert critical_exponent_fraction(7, 4) is None
        assert critical_exponent(7, 4) == pytest.approx(math.log(7) / math.log(4))

    def test_equal(self):
        assert critical_exponent(4, 4) == pytest.approx(1.0)
        assert critical_exponent_fraction(4, 4) == Fraction(1)

    def test_a_one(self):
        assert critical_exponent(1, 2) == 0.0
        assert critical_exponent_fraction(1, 2) == Fraction(0)

    def test_rational_cases(self):
        assert critical_exponent_fraction(16, 8) == Fraction(4, 3)
        assert critical_exponent_fraction(27, 9) == Fraction(3, 2)
        assert critical_exponent_fraction(2, 4) == Fraction(1, 2)

    def test_invalid_a(self):
        with pytest.raises(ValueError):
            critical_exponent(0, 2)
