"""Unit tests for RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import as_generator, fixed_seeds, spawn


class TestAsGenerator:
    def test_from_int_is_deterministic(self):
        a = as_generator(7).random(4)
        b = as_generator(7).random(4)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(3)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        a = [g.random() for g in spawn(42, 3)]
        b = [g.random() for g in spawn(42, 3)]
        assert a == b
        assert len(set(a)) == 3

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(0)
        kids = spawn(gen, 2)
        assert len(kids) == 2
        assert kids[0].random() != kids[1].random()

    def test_zero_children(self):
        assert spawn(1, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(1, -1)

    def test_bad_source_rejected(self):
        with pytest.raises(TypeError):
            spawn(3.14, 2)


class TestFixedSeeds:
    def test_deterministic(self):
        assert fixed_seeds(9, 5) == fixed_seeds(9, 5)

    def test_distinct(self):
        seeds = fixed_seeds(9, 16)
        assert len(set(seeds)) == 16
