"""The ReplayableStream addressing contract.

A :class:`repro.util.rng.ReplayableStream` is a pure function from
``(root_seed, purpose, trial, index)`` to a draw — no stream position,
no consumption order.  These tests pin the contract every consumer
(addressable placements, ``sample_at``, Monte-Carlo substreams) builds
on: block draws equal per-index draws, planes never collide, and
replaying is the identity.
"""

import numpy as np
import pytest

from repro.util.rng import RNG_SCHEME, ReplayableStream


class TestAddressing:
    def test_block_draw_matches_per_index_draws(self):
        stream = ReplayableStream(7, "test")
        block = stream.uniforms_at(0, 64)
        singles = np.array([stream.uniform_at(i) for i in range(64)])
        np.testing.assert_array_equal(block, singles)

    def test_unaligned_windows_agree_with_aligned(self):
        # lo need not be a multiple of the Philox word block
        stream = ReplayableStream(7, "test")
        whole = stream.uniforms_at(0, 100)
        for lo, hi in [(1, 5), (3, 99), (37, 41), (4, 100), (99, 100)]:
            np.testing.assert_array_equal(
                stream.uniforms_at(lo, hi), whole[lo:hi]
            )

    def test_empty_window(self):
        assert ReplayableStream(0).uniforms_at(10, 10).size == 0

    def test_draws_are_uniform_unit_interval(self):
        u = ReplayableStream(1, "u").uniforms_at(0, 10_000)
        assert float(u.min()) >= 0.0 and float(u.max()) < 1.0
        assert abs(float(u.mean()) - 0.5) < 0.02

    def test_integers_at_within_bounds(self):
        stream = ReplayableStream(3, "ints")
        draws = [stream.integers_at(i, 2, 9) for i in range(500)]
        assert min(draws) >= 2 and max(draws) <= 8
        assert len(set(draws)) == 7  # every value of [2, 9) appears

    def test_generator_at_is_reproducible_and_independent(self):
        stream = ReplayableStream(5, "gen")
        a = stream.generator_at(11).multinomial(100, [0.5, 0.5])
        b = stream.generator_at(11).multinomial(100, [0.5, 0.5])
        np.testing.assert_array_equal(a, b)
        c = stream.generator_at(12).multinomial(100, [0.5, 0.5])
        assert not np.array_equal(a, c) or True  # may collide; no crash


class TestPlaneSeparation:
    def test_different_seeds_differ(self):
        a = ReplayableStream(0).uniforms_at(0, 32)
        b = ReplayableStream(1).uniforms_at(0, 32)
        assert not np.array_equal(a, b)

    def test_different_purposes_differ(self):
        base = ReplayableStream(0, "mc")
        assert not np.array_equal(
            base.uniforms_at(0, 32),
            ReplayableStream(0, "scan").uniforms_at(0, 32),
        )

    def test_different_trials_differ(self):
        base = ReplayableStream(0, "mc")
        assert not np.array_equal(
            base.for_trial(0).uniforms_at(0, 32),
            base.for_trial(1).uniforms_at(0, 32),
        )

    def test_substream_joins_purposes(self):
        sub = ReplayableStream(0, "mc").substream("scan")
        assert sub.purpose == "mc/scan"
        assert sub.root_seed == 0

    def test_generator_plane_disjoint_from_block_plane(self):
        # generator_at(i) keys a fourth component; it must not replay
        # the block-addressed words of the same stream
        stream = ReplayableStream(9, "p")
        block = stream.uniforms_at(0, 4)
        gen_draws = stream.generator_at(0).random(4)
        assert not np.array_equal(block, gen_draws)


class TestReplayAndTypes:
    def test_replay_is_identity(self):
        a = ReplayableStream(42, "x", 3)
        b = ReplayableStream(42, "x", 3)
        np.testing.assert_array_equal(
            a.uniforms_at(100, 200), b.uniforms_at(100, 200)
        )

    def test_numpy_integers_normalize(self):
        a = ReplayableStream(np.int64(6), "t", np.int32(2))
        b = ReplayableStream(6, "t", 2)
        assert a == b

    def test_rejects_non_integer_seed(self):
        with pytest.raises(TypeError):
            ReplayableStream(1.5)

    def test_scheme_identifier_is_versioned(self):
        assert RNG_SCHEME == "philox-addressed-v2"
