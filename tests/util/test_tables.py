"""Unit tests for table/sparkline rendering."""

import pytest

from repro.util.tables import format_kv, format_number, format_table, sparkline


class TestFormatNumber:
    def test_int(self):
        assert format_number(42) == "42"

    def test_bool(self):
        assert format_number(True) == "True"

    def test_float_normal(self):
        assert format_number(1.5) == "1.5"

    def test_float_scientific(self):
        assert "e" in format_number(1.23e12)
        assert "e" in format_number(1.23e-9)

    def test_zero_and_nan(self):
        assert format_number(0.0) == "0"
        assert format_number(float("nan")) == "nan"

    def test_string_passthrough(self):
        assert format_number("abc") == "abc"


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "x"], [("a", 1), ("bb", 22)])
        lines = out.split("\n")
        assert lines[0].startswith("name")
        assert len(lines) == 4  # header, rule, two rows

    def test_title(self):
        out = format_table(["c"], [(1,)], title="T")
        assert out.split("\n")[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_numeric_right_alignment(self):
        out = format_table(["v"], [(1,), (100,)])
        rows = out.split("\n")[1:]
        assert rows[-1].endswith("100")
        assert rows[-2].endswith("  1")

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatKv:
    def test_alignment(self):
        out = format_kv({"x": 1, "long_key": 2.5})
        lines = out.split("\n")
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert format_kv({}) == ""


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_heights(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s == "".join(sorted(s))

    def test_downsampling(self):
        assert len(sparkline(list(range(1000)), width=50)) == 50

    def test_all_zero(self):
        assert sparkline([0, 0, 0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
